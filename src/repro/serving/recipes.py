"""Write-heavy and mixed read/write request recipes for the serving
harness: boxroom, countries, and rolify — the apps (and the ``sqldb``
write paths) the read-only concurrency workloads never touch.

The differential acceptance bar is *oracle-identical outcome
multisets*: a threaded run (with or without churn) must produce exactly
the outcomes a single-threaded — or cache-free — replay of the same
schedule produces.  Writes make that non-trivial, so every recipe obeys
a **disjoint-resource discipline**, the serving analog of real traffic
where distinct users touch distinct rows:

* write thunks are *self-contained cycles* (create → read → update →
  destroy) over rows they themselves create, leaving the database
  exactly as they found it;
* cycles write only into dedicated *scratch* containers (a scratch
  folder subtree, freshly created users) that no read thunk ever
  renders, and read thunks touch only seeded rows no write ever
  mutates;
* the only interleaving-dependent value a cycle can observe is its own
  autoincrement id, which :func:`mask_ids` strips from the outcome.

With that discipline every thunk's outcome is deterministic under any
interleaving, so cross-thread interference — a torn row, a stale cached
check, a lost invalidation — surfaces as a *multiset divergence* rather
than hiding inside benign nondeterminism.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional

from ..apps import World, all_builders
from ..rtypes import Sym

Thunk = Callable[[], object]

#: serving-specific build knobs per app (trimmed view chrome keeps the
#: per-request CPU realistic for a JSON-ish endpoint rather than a
#: full page render; tests trim further).
DEFAULT_CFG: Dict[str, dict] = {
    "boxroom": {"view_cost": 40},
    "countries": {},
    "rolify": {"view_cost": 40},
}

#: the fixed role vocabulary the rolify recipes grant/revoke.  Keeping
#: it closed means ``is_<role>`` methods exist after setup and request
#: threads only *re-annotate* (an invalidation wave per grant — the
#: Fig. 2 pre-contract running under live traffic) instead of racing to
#: define new methods.
ROLIFY_ROLES = ("professor", "student", "grader")

_ID_PATTERN = re.compile(r"/(folders|files|roles|users)/\d+")


def mask_ids(text: str) -> str:
    """Replace resource ids in paths/redirects with ``#`` — the only
    legitimately interleaving-dependent bytes in a write outcome."""
    return _ID_PATTERN.sub(r"/\1/#", text)


def _created_id(response: str, resource: str) -> int:
    match = re.search(rf"/{resource}/(\d+)", response)
    if match is None:
        raise AssertionError(
            f"create response carried no /{resource}/<id>: {response!r}")
    return int(match.group(1))


def build_serving_world(app_name: str, engine=None,
                        cfg: Optional[dict] = None) -> World:
    """Build, seed, and fixture one of the serving subject apps."""
    if app_name not in DEFAULT_CFG:
        raise ValueError(f"no serving recipe for {app_name!r}; "
                         f"pick one of {sorted(DEFAULT_CFG)}")
    knobs = dict(DEFAULT_CFG[app_name])
    knobs.update(cfg or {})
    world = all_builders()[app_name](engine, **knobs)
    world.seed()
    _install_fixtures(world)
    return world


def _install_fixtures(world: World) -> None:
    """Scratch containers and baseline state the recipes rely on."""
    if world.name == "boxroom":
        m = world.extras["models"]
        root = m.Folder.find_by_name("root")
        scratch = m.Folder.create(name="scratch", parent_id=root.id,
                                  owner_id=1)
        scratch2 = m.Folder.create(name="scratch2", parent_id=scratch.id,
                                   owner_id=1)
        world.extras["serving"] = {"scratch": scratch.id,
                                   "scratch2": scratch2.id}
    elif world.name == "rolify":
        m = world.extras["models"]
        users = m.User.all()
        # Baseline grants: the is_<role> methods (and their generated
        # annotations) exist before traffic starts, and the /roles index
        # is deterministic for the read-only scenario.
        for user, role in zip(users, ROLIFY_ROLES):
            user.grant(role)
        world.extras["serving"] = {"user_ids": [u.id for u in users]}
    elif world.name == "countries":
        world.extras["serving"] = {}


# -- read mixes --------------------------------------------------------------


def read_thunks(world: World, *, with_index: bool = False) -> List[Thunk]:
    """Read-only requests over *seeded* rows — deterministic even while
    write cycles run, because cycles only touch scratch containers.

    ``with_index`` adds whole-table index pages (GET /files,
    GET /roles).  Those render every row including in-flight scratch
    rows, so they are only sound in scenarios with no concurrent
    writes (the read-heavy baseline).
    """
    if world.name == "boxroom":
        return _boxroom_reads(world, with_index)
    if world.name == "countries":
        return _countries_reads(world)
    if world.name == "rolify":
        return _rolify_reads(world, with_index)
    raise ValueError(f"no serving read mix for {world.name!r}")


def _boxroom_reads(world: World, with_index: bool) -> List[Thunk]:
    app = world.extras["app"]

    def get(path: str) -> Thunk:
        return lambda: app.request("GET", path)

    thunks = [get("/folders")]
    thunks += [get(f"/folders/{fid}") for fid in ("1", "2", "3", "4")]
    thunks += [get("/files/1/2"), get("/files/3/2"), get("/files/5/2")]
    thunks += [
        lambda: app.request("POST", "/session",
                            {"email": "dana@box.example"}),
        lambda: app.request("POST", "/session",
                            {"email": "ghost@box.example"}),
    ]
    if with_index:
        thunks.append(get("/files"))
    return thunks


def _countries_reads(world: World) -> List[Thunk]:
    store = world.extras["state"]["store"]
    return [
        lambda: store.find_by_alpha2("US").summary_line(),
        lambda: store.find_by_alpha2("KE").summary_line(),
        lambda: store.total_population(),
        lambda: len(store.in_region("Europe")),
        lambda: store.currencies_in("Americas"),
        lambda: store.speaking("en"),
        lambda: store.find_by_name("Brazil").currency(),
    ]


def _rolify_reads(world: World, with_index: bool) -> List[Thunk]:
    app = world.extras["app"]
    m = world.extras["models"]
    uids = world.extras["serving"]["user_ids"]
    users = [m.User.find(uid) for uid in uids]
    thunks: List[Thunk] = [
        lambda: users[0].role_summary(),
        lambda: users[1].role_summary(),
        lambda: users[0].is_professor(),
        lambda: users[1].is_student(),
        lambda: users[2].is_grader(),
        lambda: users[2].roles_list(),
    ]
    if with_index:
        thunks.append(lambda: app.request("GET", "/roles"))
    return thunks


# -- write cycles ------------------------------------------------------------


def write_thunks(world: World) -> List[Thunk]:
    """Self-contained create/update/destroy cycles (see module doc)."""
    if world.name == "boxroom":
        return _boxroom_writes(world)
    if world.name == "countries":
        return _countries_writes(world)
    if world.name == "rolify":
        return _rolify_writes(world)
    raise ValueError(f"no serving write mix for {world.name!r}")


def _boxroom_writes(world: World) -> List[Thunk]:
    app = world.extras["app"]
    m = world.extras["models"]
    scratch = world.extras["serving"]["scratch"]
    scratch2 = world.extras["serving"]["scratch2"]

    def controller_file_cycle():
        # The full HTTP write path: untrusted-params validation, typed
        # controller actions, model create/update/destroy underneath.
        created = app.request("POST", "/files", {
            "filename": "upload.tmp.bin", "size_bytes": "2048",
            "folder_id": str(scratch), "owner_id": "1"})
        fid = _created_id(created, "files")
        moved = app.request("POST", f"/files/{fid}/move",
                            {"folder_id": str(scratch2)})
        gone = app.request("POST", f"/files/{fid}/destroy", {})
        return (mask_ids(created), mask_ids(moved), mask_ids(gone))

    def controller_folder_cycle():
        created = app.request("POST", "/folders", {
            "name": "burst", "parent_id": str(scratch), "owner_id": "2"})
        fid = _created_id(created, "folders")
        gone = app.request("POST", f"/folders/{fid}/destroy", {})
        return (mask_ids(created), mask_ids(gone))

    def model_file_cycle():
        # The model write path without the controller: checked framework
        # annotations (create/update/destroy) plus checked app methods
        # reading the row back between writes.
        f = m.UserFile.create({Sym("filename"): "cycle.v1.dat",
                               Sym("size_bytes"): 3 * 1048576,
                               Sym("folder_id"): scratch2,
                               Sym("owner_id"): 2})
        first = (f.human_size(), f.extension(), f.location())
        f.update({Sym("size_bytes"): 512})
        second = f.human_size()
        return (first, second, f.destroy())

    def share_cycle():
        f = m.UserFile.create({Sym("filename"): "shared.tmp",
                               Sym("size_bytes"): 1024,
                               Sym("folder_id"): scratch,
                               Sym("owner_id"): 1})
        dana = m.User.find_by_email("dana@box.example")
        s = m.Share.create({Sym("file_id"): f.id, Sym("user_id"): dana.id,
                            Sym("can_edit"): True})
        visible = (f.shared_with(dana), s.editable())
        return (visible, s.destroy(), f.destroy())

    return [controller_file_cycle, controller_folder_cycle,
            model_file_cycle, share_cycle]


def _countries_writes(world: World) -> List[Thunk]:
    # Countries has no database; its "write" profile is the expensive
    # mutation-shaped work the app actually has — rebuilding the store
    # (the paper's load_cache downcast plus per-country generic casts)
    # as a fresh object graph per request.
    lib = world.extras["lib"]

    def rebuild_store():
        store = lib.CountryStore()
        return (store.total_population(), len(store.report()))

    def reload_blob():
        cache = lib.DataStore().load_cache()
        return sorted(cache.keys())[:3]

    return [rebuild_store, reload_blob]


def _rolify_writes(world: World) -> List[Thunk]:
    app = world.extras["app"]
    m = world.extras["models"]

    def model_user_cycle():
        # Fresh user per cycle: sqldb insert/delete under threads, and
        # every grant re-runs the Fig. 2 pre-contract — a generated
        # re-annotation (invalidation wave) from a request thread.
        u = m.User.create({Sym("name"): "Temp",
                           Sym("email"): "temp@umd.example"})
        granted = u.grant("professor")
        summary = u.role_summary()
        revoked = u.revoke("professor")
        return (granted, summary, revoked, u.destroy())

    def controller_role_cycle():
        u = m.User.create({Sym("name"): "Visit",
                           Sym("email"): "visit@umd.example"})
        granted = app.request("POST", f"/roles/{u.id}/grant",
                              {"role": "student"})
        revoked = app.request("POST", f"/roles/{u.id}/revoke",
                              {"role": "student"})
        return (mask_ids(granted), mask_ids(revoked), u.destroy())

    return [model_user_cycle, controller_role_cycle]


# -- mixed schedules ---------------------------------------------------------


def mixed_thunks(world: World, reads_per_write: int = 4) -> List[Thunk]:
    """Interleave index-safe reads with write cycles at the given ratio
    (requests deal round-robin over this list, so the ratio holds per
    worker thread too)."""
    reads = read_thunks(world, with_index=False)
    writes = write_thunks(world)
    mixed: List[Thunk] = []
    ri = 0
    for w in writes:
        for _ in range(reads_per_write):
            mixed.append(reads[ri % len(reads)])
            ri += 1
        mixed.append(w)
    return mixed


def write_heavy_thunks(world: World, writes_per_read: int = 3) -> List[Thunk]:
    """Write-dominant schedule: ``writes_per_read`` cycles per read."""
    reads = read_thunks(world, with_index=False)
    writes = write_thunks(world)
    heavy: List[Thunk] = []
    wi = 0
    for r in reads:
        for _ in range(writes_per_read):
            heavy.append(writes[wi % len(writes)])
            wi += 1
        heavy.append(r)
    return heavy


def scenario_thunks(world: World, mix: str) -> List[Thunk]:
    """The thunk list for a scenario kind: ``read`` | ``write`` |
    ``mixed``."""
    if mix == "read":
        return read_thunks(world, with_index=True)
    if mix == "write":
        return write_heavy_thunks(world)
    if mix == "mixed":
        return mixed_thunks(world)
    raise ValueError(f"unknown mix {mix!r}; "
                     f"expected 'read', 'write', or 'mixed'")
