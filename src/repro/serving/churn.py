"""Churn recipes for the serving harness: the full Rails mutation
substrate applied while N request threads are in flight.

Three mutator kinds, one dedicated thread each (the driver accepts a
list of churn callables):

* **retype** — ``engine.types.replace`` of a hot checked method with
  its unchanged signature, plus a fresh-class registration every few
  steps: the same semantics-preserving invalidation wave the
  concurrency workload already models;
* **reload** — a real ``rails.reloader`` dev-mode reload: two
  *textually different but behaviorally identical* versions of a hot
  method's source alternate, so every step is a genuine IR-diff "body
  changed" event — invalidate dependents, recompile, recheck at next
  call — landing mid-traffic;
* **typegen** — re-running the schema-driven type generators
  (``generate_attribute_types`` / ``generate_finder_types``) for a
  model, i.e. the metaprogramming hooks re-annotating every column
  getter/setter and finder while requests are using them.

All three are semantics-preserving, so the differential bar stays
absolute: outcomes under churn must equal the no-churn oracle's.

Storm accounting: :func:`count_storms` wraps any recipe so each step
that displaces at least one live specialized wrapper (``stats.deopts``
advanced) counts as one *deopt storm* — the per-phase attribution the
latency report pairs with p999.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..apps import World
from ..rails import typegen
from ..rails.reloader import AppVersion, Reloader

Churn = Callable[[int], None]

#: per-app (owner, method, signature) retyped by the retype recipe — a
#: hot, statically-checked method whose plans/derivations are warm.
RETYPE_TARGETS: Dict[str, Tuple[str, str, str]] = {
    "boxroom": ("Folder", "path", "() -> String"),
    "countries": ("Country", "summary_line", "() -> String"),
    "rolify": ("User", "display_name", "() -> String"),
}

#: alternating-source reload versions per app: (class, method, sig,
#: source A, source B).  A and B compute the same value through
#: different bodies, so the reload's IR diff always fires while the
#: request outcomes stay oracle-identical.
RELOAD_VERSIONS: Dict[str, Tuple[str, str, str, str, str]] = {
    "boxroom": (
        "User", "display_name", "() -> String",
        "def display_name(self):\n"
        "    return f\"{self.name} <{self.email}>\"\n",
        "def display_name(self):\n"
        "    nm = self.name\n"
        "    em = self.email\n"
        "    return f\"{nm} <{em}>\"\n",
    ),
    "rolify": (
        "User", "display_name", "() -> String",
        "def display_name(self):\n"
        "    return f\"{self.name} <{self.email}>\"\n",
        "def display_name(self):\n"
        "    parts = [self.name, \" <\", self.email, \">\"]\n"
        "    return \"\".join(parts)\n",
    ),
}


def retype_churn(world: World) -> Churn:
    """Signature-preserving retype wave + periodic fresh-class noise."""
    engine = world.engine
    owner, method, sig = RETYPE_TARGETS[world.name]
    fresh_count = [0]

    def step(step_index: int) -> None:
        engine.types.replace(owner, method, sig, check=True)
        if step_index % 4 == 0:
            fresh_count[0] += 1
            fresh = type(f"ServingScratch{world.name.title()}"
                         f"{fresh_count[0]}", (object,), {})
            engine.register_class(fresh)
        engine.field_type(owner, "serving_scratch", "Integer")

    return step


def reload_churn(world: World) -> Churn:
    """Dev-mode reload alternating two equivalent sources of a hot
    method — every step is a real body-changed invalidation wave."""
    if world.name not in RELOAD_VERSIONS:
        raise ValueError(f"no reload churn for {world.name!r}")
    app = world.extras["app"]
    cls_name, method, sig, src_a, src_b = RELOAD_VERSIONS[world.name]
    models = world.extras["models"]
    cls = getattr(models, cls_name)
    reloader = Reloader(app)
    reloader.register_class(cls)
    versions = (
        AppVersion("serving-A").add(cls_name, method, sig, src_a),
        AppVersion("serving-B").add(cls_name, method, sig, src_b),
    )
    # Prime with version A so every later apply is a diffed *reload*
    # (body_changed) rather than a first definition.
    reloader.apply(versions[0])

    def step(step_index: int) -> None:
        reloader.apply(versions[(step_index + 1) % 2])

    return step


def typegen_churn(world: World) -> Churn:
    """Re-run the schema-driven generators for the app's user model:
    every column getter/setter and finder is re-annotated (identical
    generated signatures) while traffic consults them."""
    if not world.uses_rails:
        raise ValueError(f"no typegen churn for {world.name!r}")
    app = world.extras["app"]
    models = world.extras["models"]
    cls = models.User
    schema = app.db.table("users").schema

    def step(step_index: int) -> None:
        typegen.generate_attribute_types(app, cls, schema)
        if step_index % 2 == 0:
            typegen.generate_finder_types(app, cls, schema)

    return step


def churn_suite(world: World, kind: str = "full") -> List[Churn]:
    """The mutator-thread recipes for a scenario.

    ``kind``: ``none`` (no mutators), ``retype`` (the single-recipe
    wave matching the concurrency workload), or ``full`` (retype +
    dev-mode reload + typegen regeneration, each on its own thread —
    Rails apps only get all three; countries gets retype).
    """
    if kind == "none":
        return []
    if kind == "retype":
        return [retype_churn(world)]
    if kind == "full":
        churns = [retype_churn(world)]
        if world.name in RELOAD_VERSIONS:
            churns.append(reload_churn(world))
        if world.uses_rails:
            churns.append(typegen_churn(world))
        return churns
    raise ValueError(f"unknown churn kind {kind!r}; "
                     f"expected 'none', 'retype', or 'full'")


def count_storms(churn: Churn, stats, storms: Dict[str, int]) -> Churn:
    """Wrap ``churn`` so ``storms['count']`` counts steps that actually
    displaced live specialized wrappers (a deopt storm: the wave the
    p999 column feels).  Each wrapped recipe gets its own dict; the
    harness sums them, so no cross-thread sharing."""

    def step(step_index: int) -> None:
        deopts_before = stats.deopts
        churn(step_index)
        if stats.deopts > deopts_before:
            storms["count"] += 1

    return step
