"""Per-request latency recording for the serving harness.

Throughput averages away exactly the thing the ROADMAP's production-
realism item cares about: a deopt storm or an invalidation wave stalls
*some* requests badly while the mean barely moves.  The recorder makes
those waves visible as tail percentiles (p99/p999) instead.

Design constraints, in order:

* **No allocation, no locking on the hot record path.**  Each recording
  thread owns a :class:`Reservoir` — a preallocated buffer of float
  slots — reached through a ``threading.local``; ``record()`` is an
  index store plus an increment.  Shard creation (once per thread) is
  the only locked, allocating step, mirroring ``Stats.local()``.
* **Exact percentiles whenever the data fits.**  Per-thread buffers are
  merged and sorted at summary time; as long as no reservoir
  overflowed, the merged sample *is* the full population and the
  nearest-rank percentiles are exact (the unit tests assert this
  merge-exactness).  On overflow a reservoir degrades to uniform
  reservoir sampling (Vitter's R) with a deterministic per-shard seed,
  and the summary flags itself ``exact=False``.
* **Percentile convention: nearest-rank** (the value at index
  ``ceil(q*n) - 1`` of the sorted sample).  Every reported percentile
  is a latency that actually occurred — no interpolation between two
  requests that never happened — which is the convention tail-latency
  SLOs use.
"""

from __future__ import annotations

import math
import random
import threading
from dataclasses import dataclass
from typing import List, Optional

#: default per-thread capacity; the benchmarks schedule far fewer
#: requests per thread than this, so their percentiles are exact.
DEFAULT_CAPACITY = 16384


def nearest_rank(sorted_values: List[float], q: float) -> float:
    """The q-th percentile (0 < q <= 1) of an ascending-sorted sample,
    nearest-rank convention."""
    n = len(sorted_values)
    if n == 0:
        raise ValueError("percentile of an empty sample")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile {q!r} outside (0, 1]")
    return sorted_values[max(0, math.ceil(q * n) - 1)]


class Reservoir:
    """One thread's latency samples: a preallocated buffer of floats.

    Below capacity every sample is kept (exact).  Past capacity, slot
    replacement follows uniform reservoir sampling so the kept subset
    stays an unbiased sample of the whole stream; the RNG is seeded per
    reservoir so runs are reproducible.
    """

    __slots__ = ("_buf", "_cap", "_count", "_rng")

    def __init__(self, capacity: int = DEFAULT_CAPACITY, seed: int = 0):
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self._buf = [0.0] * capacity
        self._cap = capacity
        self._count = 0
        self._rng = random.Random(seed)

    def record(self, value: float) -> None:
        """Record one sample.  The non-overflow path allocates nothing
        and takes no lock: one list-slot store and one increment."""
        i = self._count
        if i < self._cap:
            self._buf[i] = value
        else:
            j = self._rng.randrange(i + 1)
            if j < self._cap:
                self._buf[j] = value
        self._count = i + 1

    @property
    def count(self) -> int:
        """Samples recorded (including any sampled away by overflow)."""
        return self._count

    @property
    def overflowed(self) -> bool:
        return self._count > self._cap

    def samples(self) -> List[float]:
        """The kept samples (a copy; order is not meaningful)."""
        return self._buf[:min(self._count, self._cap)]


def summarize_samples(samples: List[float],
                      count: Optional[int] = None) -> "LatencySummary":
    """Build a summary from an unsorted merged sample list.  ``count``
    is the number of latencies *recorded* (>= the samples retained when
    a reservoir overflowed) — e.g. the summed per-worker reservoir
    counts in the multi-process merge path."""
    if not samples:
        raise ValueError("no latency samples recorded")
    merged = sorted(samples)
    count = len(merged) if count is None else count
    return LatencySummary(
        count=count,
        sampled=len(merged),
        exact=(count == len(merged)),
        p50=nearest_rank(merged, 0.50),
        p95=nearest_rank(merged, 0.95),
        p99=nearest_rank(merged, 0.99),
        p999=nearest_rank(merged, 0.999),
        max=merged[-1],
        mean=sum(merged) / len(merged),
    )


def summarize_partitioned(first_samples: List[float],
                          replay_samples: List[float]) -> dict:
    """Latency attribution for supervised runs: first-attempt and
    replayed requests summarized *separately*, plus the combined view.

    Folding replays into one population would let recovery cost hide in
    (or masquerade as) the steady-state tail; keeping the partitions
    apart makes "replays are slower because they re-pay cold start"
    visible as its own percentile column.  Keys without samples (e.g.
    ``replayed`` in a fault-free run) are None.
    """
    out = {
        "first_attempt": (summarize_samples(first_samples).as_ms_dict()
                          if first_samples else None),
        "replayed": (summarize_samples(replay_samples).as_ms_dict()
                     if replay_samples else None),
    }
    combined = first_samples + replay_samples
    out["combined"] = (summarize_samples(combined).as_ms_dict()
                       if combined else None)
    return out


@dataclass(frozen=True)
class LatencySummary:
    """Merged percentile view across every recording thread."""

    count: int           # samples recorded
    sampled: int         # samples retained (== count unless overflow)
    exact: bool          # percentiles computed over the full population
    p50: float
    p95: float
    p99: float
    p999: float
    max: float
    mean: float

    def as_ms_dict(self) -> dict:
        """The committed-baseline JSON shape (milliseconds, rounded)."""
        return {
            "count": self.count,
            "latency_exact": self.exact,
            "p50_ms": round(self.p50 * 1000, 3),
            "p95_ms": round(self.p95 * 1000, 3),
            "p99_ms": round(self.p99 * 1000, 3),
            "p999_ms": round(self.p999 * 1000, 3),
            "max_ms": round(self.max * 1000, 3),
            "mean_ms": round(self.mean * 1000, 3),
        }


class LatencyRecorder:
    """Per-thread reservoirs merged into one percentile summary.

    Unlike ``Stats``, dead threads' shards are *kept* — their samples
    are part of the run being measured — until :meth:`reset`.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._shards: List[Reservoir] = []
        self._lock = threading.Lock()
        self._tl = threading.local()

    def record(self, seconds: float) -> None:
        """Record one request latency (hot path: shard lookup + store)."""
        shard = getattr(self._tl, "shard", None)
        if shard is None:
            shard = self._new_shard()
        shard.record(seconds)

    def _new_shard(self) -> Reservoir:
        with self._lock:
            shard = Reservoir(self.capacity, seed=len(self._shards))
            self._shards.append(shard)
        self._tl.shard = shard
        return shard

    def timed(self, thunk, clock=None):
        """Wrap a zero-arg request thunk so its wall-clock is recorded —
        exceptions included (an erroring request still has a latency)."""
        import time
        clock = clock or time.perf_counter
        record = self.record

        def run():
            t0 = clock()
            try:
                return thunk()
            finally:
                record(clock() - t0)
        return run

    @property
    def count(self) -> int:
        with self._lock:
            return sum(s.count for s in self._shards)

    def merged_samples(self) -> List[float]:
        """All retained samples across shards (unsorted copy)."""
        with self._lock:
            shards = list(self._shards)
        merged: List[float] = []
        for shard in shards:
            merged.extend(shard.samples())
        return merged

    def summary(self) -> LatencySummary:
        with self._lock:
            shards = list(self._shards)
        count = sum(s.count for s in shards)
        merged: List[float] = []
        for shard in shards:
            merged.extend(shard.samples())
        return summarize_samples(merged, count)

    def reset(self) -> None:
        """Drop every shard; every thread re-registers on next record.
        Only safe between runs — a thread mid-``record`` may still hold
        a reference to a dropped shard and its sample would be lost."""
        with self._lock:
            self._shards = []
        self._tl = threading.local()
