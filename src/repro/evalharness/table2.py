"""Table 2: the Talks dev-mode update ledger."""

from __future__ import annotations

from typing import List

from ..apps.talks.updates import UpdateRow, run_update_experiment


def table2_rows(view_cost: int = 30) -> List[UpdateRow]:
    return run_update_experiment(view_cost=view_cost)


def format_table2(rows: List[UpdateRow]) -> str:
    header = (f"{'Version':<11}{'dMeth':>7}{'Added':>7}{'Deps':>6}"
              f"{'Chkd':>10}")
    lines = [header, "-" * len(header)]
    for r in rows:
        if r.delta_meth is None:
            lines.append(f"{r.version:<11}{'N/A':>7}{'N/A':>7}{'N/A':>6}"
                         f"{r.checked_with_helpers:>10}")
        else:
            chkd = (f"{r.checked_with_helpers}/"
                    f"{r.checked_without_helpers}")
            lines.append(f"{r.version:<11}{r.delta_meth:>7}{r.added:>7}"
                         f"{r.deps:>6}{chkd:>10}")
    return "\n".join(lines)
