"""Harness for the 'Type Errors in Talks' experiment (section 5)."""

from __future__ import annotations

from typing import List, Tuple

from ..apps.talks.history import HISTORICAL_ERRORS, check_historical_error


def run_error_experiment() -> List[Tuple[str, bool, str]]:
    """Returns (version, detected-with-matching-message, message)."""
    out = []
    for entry in HISTORICAL_ERRORS:
        message = check_historical_error(entry)
        matched = message is not None and entry.error_match in message
        out.append((entry.version, matched, message or "<not detected>"))
    return out


def format_errors(results) -> str:
    lines = ["Historical Talks type errors (introduced and later fixed):"]
    for version, matched, message in results:
        status = "DETECTED" if matched else "MISSED"
        lines.append(f"  {version:<11} {status}: {message}")
    return "\n".join(lines)
