"""Physical source-line counting (the paper's sloccount).

Counts non-blank, non-comment physical lines, the same definition
``sloccount`` uses for the paper's LoC column.
"""

from __future__ import annotations

import importlib
import inspect


def count_loc(source: str) -> int:
    """Non-blank, non-comment physical lines in ``source``.

    Docstrings are counted (they are statements), matching sloccount's
    treatment of Ruby heredocs; ``#`` comment-only lines are not.
    """
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        count += 1
    return count


def count_module_loc(module_name: str) -> int:
    """LoC of one importable module."""
    module = importlib.import_module(module_name)
    return count_loc(inspect.getsource(module))


def count_world_loc(world) -> int:
    """LoC of an app's own code (its ``loc_modules``)."""
    return sum(count_module_loc(name) for name in world.loc_modules)
