"""Table 1: type-checking statistics and run-time overhead per app.

For each app the harness runs the workload in the paper's three modes:

* **Orig** — no Hummingbird at all (``intercept=False``);
* **No$** — JIT checking with the cache disabled (``caching=False``);
* **Hum** — the full system.

Each timing is the arithmetic mean of three runs, exactly as in
section 5.  The statistics columns (Chk'd/App/All, Gen'd/Used, Casts, Phs)
come from the full-system run's engine stats.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import Engine, EngineConfig
from ..apps import World, all_builders
from .loc import count_world_loc

MODES = ("orig", "nocache", "hum")


def engine_for(mode: str) -> Engine:
    if mode == "orig":
        return Engine(EngineConfig(intercept=False))
    if mode == "nocache":
        return Engine(EngineConfig(caching=False))
    if mode == "hum":
        return Engine()
    raise ValueError(f"unknown mode {mode!r}")


def build_world(name: str, mode: str = "hum", **cfg) -> World:
    """Build one app under one measurement mode."""
    return all_builders()[name](engine_for(mode), **cfg)


def time_workload(world: World, runs: int = 3) -> float:
    """Arithmetic mean over ``runs`` timed workload executions."""
    world.seed()
    world.workload()  # warm load: annotations executed, methods defined
    total = 0.0
    for _ in range(runs):
        world.seed()
        start = time.perf_counter()
        world.workload()
        total += time.perf_counter() - start
    return total / runs


@dataclass
class Table1Row:
    """One row of Table 1."""

    app: str
    loc: int
    chkd: int
    app_types: int
    all_types: int
    generated: int
    used: int
    casts: int
    phases: int
    orig_s: float
    nocache_s: float
    hum_s: float

    @property
    def ratio(self) -> float:
        return self.hum_s / self.orig_s if self.orig_s else float("inf")

    @property
    def nocache_ratio(self) -> float:
        return self.nocache_s / self.orig_s if self.orig_s else float("inf")


def measure_app(name: str, runs: int = 3, **cfg) -> Table1Row:
    """Build, run, and measure one app in all three modes."""
    timings: Dict[str, float] = {}
    stats_world: Optional[World] = None
    for mode in MODES:
        world = build_world(name, mode, **cfg)
        timings[mode] = time_workload(world, runs=runs)
        if mode == "hum":
            stats_world = world
    stats = stats_world.engine.stats
    return Table1Row(
        app=name,
        loc=count_world_loc(stats_world),
        chkd=stats.chkd(),
        app_types=stats.app_count(),
        all_types=stats.all_count(),
        generated=stats.generated_count(),
        used=stats.used_generated_count(),
        casts=stats.cast_site_count(),
        phases=stats.phases(),
        orig_s=timings["orig"],
        nocache_s=timings["nocache"],
        hum_s=timings["hum"],
    )


def table1_rows(runs: int = 3, apps: Optional[List[str]] = None
                ) -> List[Table1Row]:
    names = apps or list(all_builders())
    return [measure_app(name, runs=runs) for name in names]


def format_table1(rows: List[Table1Row]) -> str:
    header = (f"{'App':<11}{'LoC':>6}{'Chkd':>6}{'App':>5}{'All':>5}"
              f"{'Gen':>6}{'Used':>6}{'Casts':>6}{'Phs':>5}"
              f"{'Orig(s)':>9}{'No$(s)':>9}{'Hum(s)':>9}{'Ratio':>7}")
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.app:<11}{r.loc:>6}{r.chkd:>6}{r.app_types:>5}"
            f"{r.all_types:>5}{r.generated:>6}{r.used:>6}{r.casts:>6}"
            f"{r.phases:>5}{r.orig_s:>9.3f}{r.nocache_s:>9.3f}"
            f"{r.hum_s:>9.3f}{r.ratio:>6.1f}x")
    return "\n".join(lines)
