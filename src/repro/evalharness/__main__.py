"""CLI: ``python -m repro.evalharness <table1|table2|errors|all>``."""

from __future__ import annotations

import sys

from .errors import format_errors, run_error_experiment
from .table1 import format_table1, table1_rows
from .table2 import format_table2, table2_rows


def main(argv) -> int:
    which = argv[1] if len(argv) > 1 else "all"
    if which in ("table1", "all"):
        print("Table 1 — type checking results and overhead "
              "(3-run means):")
        print(format_table1(table1_rows()))
        print()
    if which in ("table2", "all"):
        print("Table 2 — Talks dev-mode update results:")
        print(format_table2(table2_rows()))
        print()
    if which in ("errors", "all"):
        print(format_errors(run_error_experiment()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
