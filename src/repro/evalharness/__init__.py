"""``repro.evalharness`` — regenerates the paper's evaluation artifacts.

* :mod:`~repro.evalharness.loc` — the sloccount analog;
* :mod:`~repro.evalharness.table1` — Table 1 (type-checking statistics and
  Orig/No$/Hum timings) from live runs;
* :mod:`~repro.evalharness.table2` — Table 2 (dev-mode updates);
* :mod:`~repro.evalharness.errors` — the historical Talks errors;
* ``python -m repro.evalharness <table1|table2|errors>`` prints them.
"""

from .loc import count_loc, count_module_loc
from .table1 import Table1Row, build_world, measure_app, table1_rows
from .table2 import table2_rows

__all__ = ["Table1Row", "build_world", "count_loc", "count_module_loc",
           "measure_app", "table1_rows", "table2_rows"]
