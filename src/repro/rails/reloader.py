"""Development-mode reloading with IR-diff-based cache invalidation.

Paper section 4, "Cache Invalidation": in Rails development mode, modified
files are reloaded without restarting.  Hummingbird intercepts the reload
and, per method, compares the new body against the old using the RIL CFGs;
only changed methods (and their dependents) are invalidated.  Removed
methods invalidate their dependents too.  Helper classes get a fresh name
on every reload (a Rails quirk), so helper methods are always re-checked —
Table 2 therefore reports checked-method counts both with and without
helpers, and so do we.

An :class:`AppVersion` is the unit of reload: per-method source text plus
signatures, standing in for the app's Ruby files at one git revision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

Key = Tuple[str, str]


@dataclass(frozen=True)
class MethodVersion:
    """One method's source at one app version."""

    cls_name: str
    name: str
    sig: str
    source: str
    helper: bool = False


@dataclass
class AppVersion:
    """All checked methods of the app at one revision."""

    label: str
    methods: List[MethodVersion] = field(default_factory=list)

    def add(self, cls_name: str, name: str, sig: str, source: str, *,
            helper: bool = False) -> "AppVersion":
        self.methods.append(MethodVersion(cls_name, name, sig, source,
                                          helper=helper))
        return self

    def keys(self) -> Set[Key]:
        return {(m.cls_name, m.name) for m in self.methods}


@dataclass
class ReloadReport:
    """What one reload did — one row of Table 2."""

    label: str
    changed: Set[Key] = field(default_factory=set)
    added: Set[Key] = field(default_factory=set)
    removed: Set[Key] = field(default_factory=set)
    dependents: Set[Key] = field(default_factory=set)
    helper_keys: Set[Key] = field(default_factory=set)

    @property
    def delta_methods(self) -> int:
        return len(self.changed)

    @property
    def added_count(self) -> int:
        return len(self.added)

    @property
    def dependent_count(self) -> int:
        return len(self.dependents - self.changed)


class Reloader:
    """Applies :class:`AppVersion` snapshots to a live app."""

    def __init__(self, app):
        self.app = app
        self._current: Dict[Key, MethodVersion] = {}
        self._classes: Dict[str, type] = {}
        self._globals: Dict[str, object] = {}

    def expose(self, **names) -> None:
        """Names (model classes, Sym, helpers) visible to method sources."""
        self._globals.update(names)

    def register_class(self, cls: type) -> None:
        self._classes[cls.__name__] = cls
        self._globals.setdefault(cls.__name__, cls)

    def apply(self, version: AppVersion) -> ReloadReport:
        """Load or reload the app at ``version``.

        First application defines everything; later applications diff each
        method body (via IR fingerprints) and invalidate changed methods
        plus dependents, remove dropped methods, and force helpers to be
        re-checked (the class-renaming quirk).
        """
        engine = self.app.engine
        report = ReloadReport(version.label)
        new_keys = version.keys()
        old_keys = set(self._current)

        for key in old_keys - new_keys:
            # Removed method: invalidate its dependents (section 4).
            report.removed.add(key)
            engine.method_removed(*key)
            del self._current[key]

        for mv in version.methods:
            key = (mv.cls_name, mv.name)
            cls = self._classes.get(mv.cls_name)
            if cls is None:
                raise LookupError(f"reloader does not know class "
                                  f"{mv.cls_name}; call register_class")
            previous = self._current.get(key)
            body_changed = previous is not None and (
                previous.source != mv.source or previous.sig != mv.sig)
            is_new = previous is None
            if previous is not None and not body_changed and not mv.helper:
                continue  # untouched: cache entry survives the reload
            if mv.helper and previous is not None and not body_changed:
                # The Rails helper quirk: the reloaded helper class gets a
                # new name, so its methods look brand new to the cache —
                # the method itself is re-checked, but nothing about it
                # changed, so dependents are untouched.
                engine.cache.remove(key)
                report.helper_keys.add(key)
                continue
            fn = self._compile(mv)
            if body_changed:
                before = engine.cache.dependents(key)
                report.dependents |= before
                report.changed.add(key)
            elif is_new and old_keys:
                report.added.add(key)
            engine.define_method(cls, mv.name, fn, sig=mv.sig, check=True,
                                 source=mv.source)
            if body_changed:
                # define_method invalidated on body diff; make sure the
                # signature path did too (re-annotation).
                engine.invalidate(mv.cls_name, mv.name)
            if mv.helper:
                report.helper_keys.add(key)
            self._current[key] = mv

        # Helpers are always dropped from the cache on reload, even
        # untouched ones (their class identity changes in real Rails);
        # unchanged helpers do not disturb their dependents.
        for mv in version.methods:
            if mv.helper:
                key = (mv.cls_name, mv.name)
                if key not in report.changed:
                    engine.cache.remove(key)
                report.helper_keys.add(key)
        return report

    def _compile(self, mv: MethodVersion):
        namespace = dict(self._globals)
        exec(compile(mv.source, f"<{mv.cls_name}.{mv.name}>", "exec"),
             namespace)
        fn = namespace[mv.name]
        fn.__hb_source__ = mv.source
        return fn
