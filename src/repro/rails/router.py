"""Routing and request dispatch — the "curl script" entry point.

Routes map ``(method, path pattern)`` to a controller action.  Dispatch
builds the controller, runs the *always-on* dynamic params check (the
untrusted-input rule of section 4), and invokes the action — which, being
an annotated app method, goes through the JIT-checking wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rtypes import Sym


class RoutingError(LookupError):
    """No route matches the request."""


@dataclass(frozen=True)
class Route:
    method: str
    segments: Tuple[str, ...]
    controller: type
    action: str

    def match(self, method: str, path_segments: Tuple[str, ...]
              ) -> Optional[Dict]:
        if method != self.method or len(path_segments) != len(self.segments):
            return None
        captures: Dict = {}
        for pattern, actual in zip(self.segments, path_segments):
            if pattern.startswith(":"):
                captures[Sym(pattern[1:])] = actual
            elif pattern != actual:
                return None
        return captures


class Router:
    def __init__(self) -> None:
        self._routes: List[Route] = []

    def add(self, method: str, path: str, controller: type,
            action: str) -> None:
        segments = tuple(s for s in path.strip("/").split("/") if s)
        self._routes.append(Route(method.upper(), segments, controller,
                                  action))

    def resolve(self, method: str, path: str) -> Tuple[Route, Dict]:
        segments = tuple(s for s in path.strip("/").split("/") if s)
        for route in self._routes:
            captures = route.match(method.upper(), segments)
            if captures is not None:
                return route, captures
        raise RoutingError(f"no route for {method} {path}")

    def routes(self) -> List[Route]:
        return list(self._routes)
