"""Controllers and the simulated view layer.

Controller actions are app code: they get real type annotations and are
statically checked just in time.  ``params`` values come from the client,
so — following section 4 — they are *always* dynamically checked at the
dispatch boundary, even though calls between checked methods skip dynamic
checks.

``render`` simulates template work with genuine string building; Rails
apps spend most of their time in framework code like this, which is why
the paper's Rails overheads are smaller than its library overheads.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..rtypes import Sym
from . import typegen


class MissingParamError(KeyError):
    """A controller asked for a parameter the request did not carry."""


def make_controller_base(app) -> type:
    class Controller:
        """Base class for this application's controllers."""

        _app = app

        def __init__(self, params: Optional[Dict] = None):
            self.params = params or {}
            self.response: Optional[str] = None

        def __init_subclass__(cls, **kwargs):
            super().__init_subclass__(**kwargs)
            app.engine.register_class(cls)

        # -- params (untrusted input) --------------------------------------

        def param(self, key: Sym) -> str:
            if key not in self.params:
                raise MissingParamError(str(key))
            return self.params[key]

        def param_or(self, key: Sym, default: str) -> str:
            return self.params.get(key, default)

        def has_param(self, key: Sym) -> bool:
            return key in self.params

        def now(self):
            import datetime
            return datetime.datetime(2016, 4, 13, 12, 0, 0)

        # -- rendering (simulated template engine) ----------------------------

        def render(self, template: str, assigns: Optional[Dict] = None) -> str:
            lines = [f"<!-- {template} -->"]
            data = assigns or {}
            for key in sorted(data, key=str):
                value = data[key]
                if isinstance(value, list):
                    for item in value:
                        lines.append(f"  <li>{_cell(item)}</li>")
                else:
                    lines.append(f"  <p>{key}: {_cell(value)}</p>")
            # Layout chrome: fixed per-page work, like a real template.
            for i in range(app.view_cost):
                lines.append(f"  <div class='row-{i % 7}'>{i * 31 % 101}"
                             f"</div>")
            self.response = "\n".join(lines)
            return self.response

        def redirect_to(self, path: str) -> str:
            self.response = f"<redirect to='{path}'/>"
            return self.response

        def head(self, status: int) -> str:
            self.response = f"<head status='{status}'/>"
            return self.response

    typegen.install_controller_framework_types(app, Controller)
    return Controller


def _cell(value) -> str:
    if value is None:
        return ""
    return str(value)
