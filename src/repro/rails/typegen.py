"""Dynamic type generation for framework metaprogramming — the heart of
the reproduction's Rails story.

"Our solution is to instrument belongs_to so that, just as it creates a
method dynamically, it also creates method type signatures dynamically"
(section 2, Fig. 1).  Every function here is such an instrument: it runs
*when the metaprogramming runs*, calling the engine's ``annotate`` with
``generated=True``.  These are the signatures Table 1 counts as "Gen'd";
the checker marks the subset it actually consults as "Used".

We deliberately generate more than any one app needs — e.g. both the
getter and the setter for every association, and a finder per column —
matching the paper's explanation of why Gen'd exceeds Used.
"""

from __future__ import annotations

from typing import Optional

from ..sqldb.schema import Schema
from .inflect import camelize, foreign_key, singularize


def generate_attribute_types(app, model_cls: type, schema: Schema) -> None:
    """Schema-driven getter/setter types for every column, plus ``id``."""
    hb = app.hb
    hb.annotate(model_cls, "id", "() -> Integer", generated=True,
                wrap=False)
    for col in schema.columns:
        t = col.rdl_type()
        hb.annotate(model_cls, col.name, f"() -> {t}", generated=True,
                    wrap=False)
        hb.annotate(model_cls, f"{col.name}=", f"({t}) -> {t}",
                    generated=True, wrap=False)


def generate_finder_types(app, model_cls: type, schema: Schema) -> None:
    """``find_by_<column>`` / ``find_all_by_<column>`` — "the method name
    indicates which field is being searched" (section 5)."""
    hb = app.hb
    model = model_cls.__name__
    for col in schema.columns:
        base = col.rdl_type().replace(" or nil", "")
        hb.annotate(model_cls, f"find_by_{col.name}",
                    f"({base}) -> {model} or nil", kind="class",
                    generated=True, wrap=False)
        hb.annotate(model_cls, f"find_all_by_{col.name}",
                    f"({base}) -> Array<{model}>", kind="class",
                    generated=True, wrap=False)


def generate_belongs_to_types(app, model_cls: type, name: str,
                              class_name: Optional[str] = None) -> None:
    """The Fig. 1 pre-hook, literally::

        hm  = name
        hmu = class_name or hm.singularize.camelize
        type hm,        "() -> #{hmu}"
        type "#{hm}=",  "(#{hmu}) -> #{hmu}"
    """
    hm = name
    hmu = class_name if class_name else camelize(singularize(hm))
    hb = app.hb
    hb.annotate(model_cls, hm, f"() -> {hmu}", generated=True,
                wrap=False)
    hb.annotate(model_cls, f"{hm}=", f"({hmu}) -> {hmu}",
                generated=True, wrap=False)


def generate_has_many_types(app, model_cls: type, name: str,
                            class_name: Optional[str] = None) -> None:
    """``has_many :talks`` gets ``() -> Array<Talk>`` plus the << adder."""
    target = class_name if class_name else camelize(singularize(name))
    hb = app.hb
    hb.annotate(model_cls, name, f"() -> Array<{target}>",
                generated=True, wrap=False)
    hb.annotate(model_cls, f"add_{singularize(name)}",
                f"({target}) -> {target}", generated=True, wrap=False)


def install_model_framework_types(app, model_base: type) -> None:
    """Trusted Rails-framework annotations, written once against the model
    base class; ``self`` resolves to the receiving model at lookup."""
    hb = app.hb
    for name, sig, kind in [
        ("find", "(Integer) -> self", "class"),
        ("all", "() -> Array<self>", "class"),
        ("first", "() -> self or nil", "class"),
        ("last", "() -> self or nil", "class"),
        ("count", "() -> Integer", "class"),
        ("create", "(?Hash<Symbol, %any>) -> self", "class"),
        ("where", "(Hash<Symbol, %any>) -> Array<self>", "class"),
        ("destroy_all", "() -> nil", "class"),
        ("save", "() -> %bool", "instance"),
        ("update", "(Hash<Symbol, %any>) -> %bool", "instance"),
        ("destroy", "() -> %bool", "instance"),
        ("reload", "() -> self", "instance"),
        ("new_record?", "() -> %bool", "instance"),
    ]:
        hb.annotate(model_base, name, sig, kind=kind, app_level=False,
                    wrap=False)


def install_controller_framework_types(app, controller_base: type) -> None:
    """Trusted annotations for the controller surface; ``params`` values
    come from the browser and stay untrusted (dynamically checked at
    dispatch)."""
    hb = app.hb
    hb.field_type(controller_base, "params", "Hash<Symbol, String>")
    for name, sig in [
        ("render", "(String, ?Hash<Symbol, %any>) -> String"),
        ("redirect_to", "(String) -> String"),
        ("head", "(Integer) -> String"),
        ("param", "(Symbol) -> String"),
        ("param_or", "(Symbol, String) -> String"),
        ("has_param", "(Symbol) -> %bool"),
        ("now", "() -> Time"),
    ]:
        hb.annotate(controller_base, name, sig, app_level=False, wrap=False)
