"""The ActiveRecord analog: models driven by schema metaprogramming.

When a model class is defined, the framework — at run time, exactly like
Rails — looks up the conventionally-named table (``Talk`` → ``talks``),
makes attribute readers/writers and ``find_by_*`` finders available, and
*generates their type signatures* through :mod:`repro.rails.typegen`.
``belongs_to``/``has_many`` may be called at any later point (the paper
stresses Rails permits this), generating both the association methods and
their types when they run.

Attribute and association reads go through ``__getattr__`` and writes
through ``__setattr__`` — dynamically dispatched framework code, which the
paper's Hummingbird trusts and does not intercept.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..rtypes import Sym
from .inflect import camelize, foreign_key, singularize, tableize
from . import typegen


class ModelError(AttributeError):
    """Unknown attribute/association/finder on a model."""


class ModelMeta(type):
    """Metaclass providing dynamic class-level finders (Rails's
    ``method_missing`` on the class object)."""

    def __getattr__(cls, name: str):
        app = cls.__dict__.get("_app") or getattr(cls, "_app", None)
        if app is None or name.startswith("_"):
            raise AttributeError(name)
        if name.startswith("find_all_by_"):
            column = name[len("find_all_by_"):]
            return lambda value: cls._find_all_by(column, value)
        if name.startswith("find_by_"):
            column = name[len("find_by_"):]
            return lambda value: cls._find_one_by(column, value)
        raise AttributeError(name)


def make_model_base(app) -> type:
    """Create the app-bound ``Model`` base class."""

    class Model(metaclass=ModelMeta):
        """Base class for this application's models."""

        _app = app
        _table = None
        _associations: Dict[str, dict] = {}

        def __init_subclass__(cls, **kwargs):
            super().__init_subclass__(**kwargs)
            cls._associations = {}
            app.engine.register_class(cls)
            table_name = tableize(cls.__name__)
            if app.db.has_table(table_name):
                cls._table = app.db.table(table_name)
                # Metaprogramming at load time: attribute methods and
                # finders spring into existence with generated types.
                typegen.generate_attribute_types(app, cls, cls._table.schema)
                typegen.generate_finder_types(app, cls, cls._table.schema)

        def __init__(self, row: dict):
            object.__setattr__(self, "_row", dict(row))

        # -- dynamic attribute dispatch (framework, trusted) --------------

        def __getattr__(self, name: str):
            row = object.__getattribute__(self, "_row")
            if name in row:
                return row[name]
            assoc = type(self)._associations.get(name)
            if assoc is not None:
                return self._resolve_association(assoc)
            raise ModelError(
                f"undefined attribute {name!r} for {type(self).__name__}")

        def __setattr__(self, name: str, value) -> None:
            if name.startswith("_"):
                object.__setattr__(self, name, value)
                return
            row = object.__getattribute__(self, "_row")
            assoc = type(self)._associations.get(name)
            if assoc is not None and assoc["kind"] == "belongs_to":
                row[assoc["fk"]] = value.id if value is not None else None
                return
            if name in row:
                row[name] = value
                return
            object.__setattr__(self, name, value)

        def _resolve_association(self, assoc: dict):
            app_ = type(self)._app
            target = app_.model_class(assoc["target"])
            if assoc["kind"] == "belongs_to":
                fk_value = self._row.get(assoc["fk"])
                return target.find(fk_value) if fk_value is not None else None
            rows = target._table.where(**{assoc["fk"]: self.id})
            return [target(r) for r in rows]

        # -- associations (run-time metaprogramming, Fig. 1) ----------------

        @classmethod
        def belongs_to(cls, name: str, class_name: Optional[str] = None):
            """Define the association *and* its types, like Fig. 1's
            instrumented belongs_to."""
            cls._associations[name] = {
                "kind": "belongs_to", "fk": foreign_key(name),
                "target": class_name or camelize(singularize(name)),
            }
            typegen.generate_belongs_to_types(app, cls, name, class_name)

        @classmethod
        def has_many(cls, name: str, class_name: Optional[str] = None,
                     fk: Optional[str] = None):
            target = class_name or camelize(singularize(name))
            cls._associations[name] = {
                "kind": "has_many",
                "fk": fk or foreign_key(cls.__name__),
                "target": target,
            }
            typegen.generate_has_many_types(app, cls, name, class_name)

        # -- persistence (framework, trusted annotations) ---------------------

        @classmethod
        def create(cls, attrs: Optional[dict] = None, **kwargs):
            values = dict(_dekey(attrs or {}))
            values.update(kwargs)
            assoc_values = {}
            for name in list(values):
                assoc = cls._associations.get(name)
                if assoc is not None and assoc["kind"] == "belongs_to":
                    assoc_values[assoc["fk"]] = values.pop(name).id
            values.update(assoc_values)
            row = cls._table.insert(**values)
            return cls(row)

        @classmethod
        def find(cls, row_id):
            row = cls._table.find(row_id)
            return cls(row) if row is not None else None

        @classmethod
        def all(cls) -> list:
            return [cls(r) for r in cls._table.all_rows()]

        @classmethod
        def first(cls):
            rows = cls._table.all_rows()
            return cls(rows[0]) if rows else None

        @classmethod
        def last(cls):
            rows = cls._table.all_rows()
            return cls(rows[-1]) if rows else None

        @classmethod
        def count(cls) -> int:
            return len(cls._table)

        @classmethod
        def where(cls, conditions: Optional[dict] = None, **kwargs) -> list:
            cond = dict(_dekey(conditions or {}))
            cond.update(kwargs)
            return [cls(r) for r in cls._table.where(**cond)]

        @classmethod
        def destroy_all(cls) -> None:
            cls._table.clear()

        @classmethod
        def _find_one_by(cls, column: str, value):
            row = cls._table.first_where(**{column: value})
            return cls(row) if row is not None else None

        @classmethod
        def _find_all_by(cls, column: str, value) -> list:
            return [cls(r) for r in cls._table.where(**{column: value})]

        def save(self) -> bool:
            row = dict(self._row)
            row_id = row.pop("id", None)
            if row_id is None:
                self._row = self._table.insert(**row)
            else:
                self._table.update(row_id, **row)
            return True

        def update(self, attrs: Optional[dict] = None, **kwargs) -> bool:
            values = dict(_dekey(attrs or {}))
            values.update(kwargs)
            for name, value in values.items():
                setattr(self, name, value)
            return self.save()

        def destroy(self) -> bool:
            return self._table.delete(self.id)

        def reload(self):
            fresh = self._table.find(self.id)
            if fresh is not None:
                self._row = fresh
            return self

        def new_record_p(self) -> bool:
            return self._row.get("id") is None

        def __eq__(self, other) -> bool:
            return (type(self) is type(other)
                    and self._row.get("id") == other._row.get("id"))

        def __hash__(self) -> int:
            return hash((type(self).__name__, self._row.get("id")))

        def __repr__(self) -> str:
            return f"<{type(self).__name__} id={self._row.get('id')}>"

    typegen.install_model_framework_types(app, Model)
    return Model


def _dekey(mapping: dict) -> dict:
    """Accept both ``Sym`` and string keys in attribute hashes."""
    return {(k.name if isinstance(k, Sym) else k): v
            for k, v in mapping.items()}
