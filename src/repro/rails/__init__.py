"""``repro.rails`` — the mini Rails substrate.

ActiveRecord-style models whose attribute methods, finders, and
associations are created by run-time metaprogramming *with generated type
signatures* (:mod:`~repro.rails.activerecord`, :mod:`~repro.rails.typegen`),
controllers with untrusted ``params`` (:mod:`~repro.rails.controller`),
request routing (:mod:`~repro.rails.router`), and development-mode
reloading with diff-based cache invalidation (:mod:`~repro.rails.reloader`).
"""

from .application import RailsApp
from .controller import MissingParamError
from .inflect import (
    camelize, foreign_key, pluralize, singularize, tableize, underscore,
)
from .reloader import AppVersion, MethodVersion, ReloadReport, Reloader
from .router import Route, Router, RoutingError

__all__ = [
    "AppVersion", "MethodVersion", "MissingParamError", "RailsApp",
    "ReloadReport", "Reloader", "Route", "Router", "RoutingError",
    "camelize", "foreign_key", "pluralize", "singularize", "tableize",
    "underscore",
]
