"""The Rails application object: engine + database + bases + router.

Each :class:`RailsApp` owns one Hummingbird engine, one database, and the
app-bound ``Model``/``Controller`` base classes.  Benchmarks construct a
fresh app per measurement mode, which is how the paper measures "Orig",
"No$", and "Hum" on the same workload.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import Engine, EngineConfig
from ..rtypes import Sym
from ..sqldb import Database
from .activerecord import make_model_base
from .controller import make_controller_base
from .router import Router


class RailsApp:
    """One application instance under one engine."""

    def __init__(self, engine: Optional[Engine] = None, *,
                 db: Optional[Database] = None, view_cost: int = 150):
        self.engine = engine or Engine()
        self.hb = self.engine.api()
        self.db = db or Database()
        #: lines of layout chrome render() emits — the framework-side work
        #: that dominates Rails app run time in the paper's measurements.
        self.view_cost = view_cost
        self.router = Router()
        self._models: Dict[str, type] = {}
        self.Model = make_model_base(self)
        self.Controller = make_controller_base(self)

    # -- model registry -----------------------------------------------------

    def register_model(self, cls: type) -> type:
        self._models[cls.__name__] = cls
        return cls

    def model_class(self, name: str) -> type:
        if name not in self._models:
            raise LookupError(f"no model named {name}")
        return self._models[name]

    # -- request dispatch ---------------------------------------------------------

    def get(self, path: str, controller: type, action: str) -> None:
        self.router.add("GET", path, controller, action)

    def post(self, path: str, controller: type, action: str) -> None:
        self.router.add("POST", path, controller, action)

    def request(self, method: str, path: str,
                params: Optional[Dict] = None) -> str:
        """Simulate one HTTP request (what the paper's curl scripts do)."""
        route, captures = self.router.resolve(method, path)
        merged = dict(params or {})
        merged.update(captures)
        merged = {Sym(k) if isinstance(k, str) else k: v
                  for k, v in merged.items()}
        # Paper section 4: params come from the browser and are untrusted,
        # so Hummingbird always dynamically checks them.
        if self.engine.config.intercept:
            self.engine.validate_untrusted_hash(merged,
                                                "Hash<Symbol, String>")
        controller = route.controller(merged)
        action = getattr(controller, route.action)
        result = action()
        return result if isinstance(result, str) else (
            controller.response or "")
