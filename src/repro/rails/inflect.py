"""String inflections (the ActiveSupport fragment the framework needs).

Fig. 1's type-generation hook computes ``hm.singularize.camelize`` to turn
an association name into a class name; the ORM turns class names into
table names the other way.  Rules are the common English ones — enough for
the vocabulary of the six subject apps.
"""

from __future__ import annotations

import re

_IRREGULAR = {
    "person": "people",
    "child": "children",
    "datum": "data",
}
_IRREGULAR_REV = {v: k for k, v in _IRREGULAR.items()}


def pluralize(word: str) -> str:
    """``talk`` -> ``talks``, ``country`` -> ``countries``."""
    if not word:
        return word
    lower = word.lower()
    if lower in _IRREGULAR:
        return _IRREGULAR[lower]
    if re.search(r"[^aeiou]y$", word):
        return word[:-1] + "ies"
    if re.search(r"(s|x|z|ch|sh)$", word):
        return word + "es"
    return word + "s"


def singularize(word: str) -> str:
    """``talks`` -> ``talk``, ``countries`` -> ``country``."""
    if not word:
        return word
    lower = word.lower()
    if lower in _IRREGULAR_REV:
        return _IRREGULAR_REV[lower]
    if word.endswith("ies"):
        return word[:-3] + "y"
    if re.search(r"(ses|xes|zes|ches|shes)$", word):
        return word[:-2]
    if word.endswith("s") and not word.endswith("ss"):
        return word[:-1]
    return word


def camelize(word: str) -> str:
    """``file_share`` -> ``FileShare``."""
    return "".join(part.capitalize() or "_" for part in word.split("_"))


def underscore(word: str) -> str:
    """``FileShare`` -> ``file_share``."""
    out = re.sub(r"(.)([A-Z][a-z]+)", r"\1_\2", word)
    out = re.sub(r"([a-z0-9])([A-Z])", r"\1_\2", out)
    return out.lower()


def tableize(class_name: str) -> str:
    """``Talk`` -> ``talks`` (Rails convention over configuration)."""
    return pluralize(underscore(class_name))


def foreign_key(name: str) -> str:
    """``owner`` -> ``owner_id``."""
    return f"{underscore(name)}_id"
