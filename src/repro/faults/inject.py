"""Deterministic, seed-driven fault injection for the serving stack.

The ROADMAP's north star is traffic from millions of users; at that
scale workers crash mid-slice, requests wedge, snapshots truncate in
transit, and mutator threads die between invalidation waves.  This
module is the *instrumentation* half of the fault-tolerance story: a
:class:`FaultPlan` is a finite script of :class:`Fault` records keyed
by **(worker slot, attempt, request ordinal)** — pure data, installed
into the drivers (``ConcurrentDriver``, ``MultiProcessDriver``,
``SupervisedDriver``) and the serving harness through an optional
``faults=`` parameter.

Design rules:

* **Deterministic.**  A fault fires iff its exact coordinate is
  reached.  :func:`generate_fault_plan` derives scripts from a seed via
  ``random.Random``, so a chaos run is replayable bit-for-bit: same
  seed, same kills, same recovery path.
* **Outside the measured semantics.**  Faults fire *around* request
  thunks, never inside them: an injected error is raised by the
  injection point before the thunk runs, so it can never be mistaken
  for a request outcome — the differential oracle compares completed
  requests only, and a faulted attempt completes nothing.
* **Zero cost when absent.**  Every driver hook is guarded by
  ``if faults is not None``; production paths with ``faults=None``
  execute exactly the pre-existing code.

Fault kinds:

``KILL``
    Worker death at a request boundary.  In a forked worker the
    injection point calls ``os._exit(KILL_EXIT_CODE)`` — no cleanup,
    no queue flush, exactly like a segfault or an OOM kill.  In a
    worker *thread* (where ``_exit`` would take the whole process) it
    raises :class:`InjectedFaultError` out of the worker loop instead,
    which the threaded driver records as a crash and the slice is lost.
``ERROR``
    An infrastructure exception at the injection point (a poisoned
    deserializer, a dead database handle).  Raised before the thunk
    runs; escapes the worker loop as a crash.
``HANG``
    A stuck request: the injection point sleeps ``delay_s`` before the
    thunk runs.  Under supervision a hang past the heartbeat timeout
    gets the worker killed and its remainder reassigned.
``CHURN_DIE``
    Mutator-thread death mid-wave-sequence: the churn wrapper raises at
    the scripted step, killing the mutator while request threads keep
    serving.  (Invalidation waves themselves are atomic under the
    engine's writer lock, so death *between* waves is the only
    reachable interleaving — which is exactly why it must be harmless.)

Snapshot corruption helpers (:func:`truncate_file`,
:func:`corrupt_file`) damage warm-state files deterministically; the
snapshot loader must degrade every such file to a clean cold start.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: exit status a KILL fault dies with — distinguishable from a clean
#: exit (0) and from a Python traceback exit (1) in supervisor logs.
KILL_EXIT_CODE = 87

KILL = "kill"
ERROR = "error"
HANG = "hang"
CHURN_DIE = "churn_die"

FAULT_KINDS = (KILL, ERROR, HANG, CHURN_DIE)


class InjectedFaultError(RuntimeError):
    """An injected infrastructure failure (never a request outcome)."""


@dataclass(frozen=True)
class Fault:
    """One scripted fault at an exact execution coordinate.

    ``worker`` is the worker slot (or, for ``CHURN_DIE``, the churn
    recipe index); ``ordinal`` is the 0-based position within the
    worker's schedule slice (or the churn step); ``attempt`` is the
    supervision retry generation — 0 on first execution, so a replayed
    remainder does not re-trip a first-attempt fault unless a fault is
    scripted for the retry attempt too.
    """

    kind: str
    worker: int
    ordinal: int
    attempt: int = 0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")


class FaultPlan:
    """A finite fault script with O(1) lookup per injection point."""

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._requests: Dict[Tuple[int, int, int], Fault] = {}
        self._churn: Dict[Tuple[int, int], Fault] = {}
        for fault in faults:
            if fault.kind == CHURN_DIE:
                self._churn[(fault.worker, fault.ordinal)] = fault
            else:
                key = (fault.worker, fault.attempt, fault.ordinal)
                self._requests[key] = fault

    def __len__(self) -> int:
        return len(self._requests) + len(self._churn)

    def faults(self) -> List[Fault]:
        """Every scripted fault (introspection/repr order: requests
        then churn, each in insertion order)."""
        return list(self._requests.values()) + list(self._churn.values())

    def request_fault(self, worker: int, attempt: int,
                      ordinal: int) -> Optional[Fault]:
        """The fault scripted for this request coordinate, if any."""
        return self._requests.get((worker, attempt, ordinal))

    def churn_fault(self, churn_index: int, step: int) -> Optional[Fault]:
        """The fault scripted for this mutator step, if any."""
        return self._churn.get((churn_index, step))

    # -- injection points ---------------------------------------------------

    def on_request(self, worker: int, attempt: int, ordinal: int, *,
                   in_process: bool) -> None:
        """Fire the fault (if scripted) for one request coordinate.

        Called by drivers immediately *before* executing the request.
        ``in_process`` distinguishes a forked worker process (KILL may
        ``os._exit``) from a worker thread (KILL degrades to a raised
        crash so the host process survives).
        """
        fault = self._requests.get((worker, attempt, ordinal))
        if fault is None:
            return
        if fault.delay_s:
            time.sleep(fault.delay_s)
        if fault.kind == KILL:
            if in_process:
                os._exit(KILL_EXIT_CODE)  # noqa: SLF001 - the point
            raise InjectedFaultError(
                f"injected kill: worker {worker} attempt {attempt} "
                f"request #{ordinal}")
        if fault.kind == ERROR:
            raise InjectedFaultError(
                f"injected error: worker {worker} attempt {attempt} "
                f"request #{ordinal}")
        # HANG: the sleep above was the fault; the request proceeds.

    def on_churn_step(self, churn_index: int, step: int) -> None:
        """Fire the mutator-death fault (if scripted) for one churn
        step — called by the churn wrapper before applying the step."""
        fault = self._churn.get((churn_index, step))
        if fault is None:
            return
        if fault.delay_s:
            time.sleep(fault.delay_s)
        raise InjectedFaultError(
            f"injected mutator death: churn {churn_index} step {step}")


def generate_fault_plan(seed: int, *, workers: int,
                        requests_per_worker: int,
                        kills: int = 0, errors: int = 0, hangs: int = 0,
                        churn_deaths: int = 0, churns: int = 1,
                        churn_steps: int = 50,
                        attempts: int = 1,
                        hang_delay_s: float = 0.05) -> FaultPlan:
    """Derive a deterministic fault script from ``seed``.

    Coordinates are drawn uniformly (without replacement per kind) over
    ``workers x attempts x requests_per_worker``; the same seed always
    yields the same script, so chaos suites pin seeds and stay
    replayable.  ``attempts`` > 1 lets a script also fault retry
    generations (testing retry-budget exhaustion).
    """
    rng = random.Random(seed)
    coords = [(w, a, o) for w in range(workers)
              for a in range(attempts)
              for o in range(requests_per_worker)]
    rng.shuffle(coords)
    faults: List[Fault] = []
    take = 0
    for kind, count in ((KILL, kills), (ERROR, errors), (HANG, hangs)):
        for _ in range(count):
            if take >= len(coords):
                break
            w, a, o = coords[take]
            take += 1
            delay = hang_delay_s if kind == HANG else 0.0
            faults.append(Fault(kind, w, o, attempt=a, delay_s=delay))
    churn_coords = [(c, s) for c in range(max(1, churns))
                    for s in range(churn_steps)]
    rng.shuffle(churn_coords)
    for c, s in churn_coords[:churn_deaths]:
        faults.append(Fault(CHURN_DIE, c, s))
    return FaultPlan(faults)


# -- snapshot corruption -----------------------------------------------------


def truncate_file(path: str, size: int) -> int:
    """Truncate ``path`` to exactly ``size`` bytes (the mid-write /
    mid-transfer snapshot).  Returns the original size."""
    original = os.path.getsize(path)
    with open(path, "rb+") as handle:
        handle.truncate(max(0, size))
    return original


def corrupt_file(path: str, seed: int, flips: int = 8) -> None:
    """Deterministically flip ``flips`` bytes of ``path`` in place (the
    bit-rotted / torn-page snapshot)."""
    rng = random.Random(seed)
    with open(path, "rb+") as handle:
        blob = bytearray(handle.read())
        if not blob:
            return
        for _ in range(flips):
            index = rng.randrange(len(blob))
            blob[index] ^= 1 << rng.randrange(8)
        handle.seek(0)
        handle.write(bytes(blob))
        handle.truncate(len(blob))
