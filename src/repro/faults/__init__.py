"""``repro.faults`` — deterministic fault injection for chaos testing.

Seed-driven scripts of worker kills, injected errors, stuck requests,
mutator-thread deaths, and snapshot corruption, installable into the
concurrency drivers and the serving harness without touching production
paths when disabled.  See :mod:`repro.faults.inject`.
"""

from .inject import (
    CHURN_DIE, ERROR, FAULT_KINDS, HANG, KILL, KILL_EXIT_CODE, Fault,
    FaultPlan, InjectedFaultError, corrupt_file, generate_fault_plan,
    truncate_file,
)

__all__ = [
    "CHURN_DIE", "ERROR", "FAULT_KINDS", "Fault", "FaultPlan", "HANG",
    "InjectedFaultError", "KILL", "KILL_EXIT_CODE", "corrupt_file",
    "generate_fault_plan", "truncate_file",
]
