"""The ``Struct.new`` analog with Fig. 3's ``add_types``."""

from __future__ import annotations

from typing import Tuple


class StructError(TypeError):
    """Wrong member count or unknown member."""


def struct_new(engine, class_name: str, *members: str) -> type:
    """Create a Struct class: positional constructor, per-member
    getters/setters, ``members()``, and the ``add_types`` hook.

    A "struct field can hold any type by default" — it is ``add_types``
    that turns the accessors into typed methods (generated annotations,
    since user code creates them at run time).
    """
    member_tuple: Tuple[str, ...] = tuple(members)

    def __init__(self, *values):
        if len(values) != len(member_tuple):
            raise StructError(
                f"{class_name} takes {len(member_tuple)} values, "
                f"got {len(values)}")
        for name, value in zip(member_tuple, values):
            object.__setattr__(self, f"_{name}", value)

    def __getattr__(self, name):
        if name in member_tuple:
            return object.__getattribute__(self, f"_{name}")
        raise AttributeError(name)

    def __setattr__(self, name, value):
        if name in member_tuple:
            object.__setattr__(self, f"_{name}", value)
            return
        object.__setattr__(self, name, value)

    def __eq__(self, other):
        return (type(self) is type(other)
                and all(getattr(self, m) == getattr(other, m)
                        for m in member_tuple))

    def __repr__(self):
        inner = ", ".join(f"{m}={getattr(self, m)!r}" for m in member_tuple)
        return f"{class_name}({inner})"

    @classmethod
    def members_of(cls) -> list:
        return list(member_tuple)

    @classmethod
    def add_types(cls, *types: str) -> None:
        """Fig. 3's user-written type generator::

            members.zip(types).each { |name, t|
              type name,        "() -> #{t}"
              type "#{name}=",  "(#{t}) -> #{t}"
            }
        """
        if len(types) != len(member_tuple):
            raise StructError(
                f"add_types needs {len(member_tuple)} types, "
                f"got {len(types)}")
        hb = engine.api()
        for name, t in zip(member_tuple, types):
            hb.annotate(cls, name, f"() -> {t}", generated=True)
            hb.annotate(cls, f"{name}=", f"({t}) -> {t}", generated=True)

    cls = type(class_name, (), {
        "__init__": __init__,
        "__getattr__": __getattr__,
        "__setattr__": __setattr__,
        "__eq__": __eq__,
        "__hash__": None,
        "__repr__": __repr__,
        "members_of": members_of,
        "add_types": add_types,
        "_members": member_tuple,
    })
    engine.register_class(cls)
    engine.hier.add_class(class_name) if not engine.hier.is_known(
        class_name) else None
    return cls
