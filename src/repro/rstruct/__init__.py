"""``repro.rstruct`` — Ruby's ``Struct`` with user-written type generation.

Fig. 3: ``Struct.new(:type, :account_name, :amount)`` creates a class with
getters and setters, and the user-written ``add_types`` classmethod zips
member names with type strings to generate getter/setter signatures —
"because Hummingbird lets programmers write arbitrary Ruby programs to
generate types, we were able to develop this much more elegant solution."
"""

from .struct import struct_new

__all__ = ["struct_new"]
