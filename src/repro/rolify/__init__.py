"""``repro.rolify`` — the role-management library of Fig. 2.

``define_dynamic_method(role_name, resource)`` creates ``is_<role>``
query methods *in user code* at run time; an RDL ``pre`` contract on it
generates their type signatures at the same moment.  Because the generated
methods are user code with annotations, Hummingbird statically checks
their (closure) bodies when they are first called — the second
metaprogramming style of section 2.
"""

from .dynamic import build_rolify

__all__ = ["build_rolify"]
