"""Fig. 2, transliterated: dynamic method definition with a pre-contract
that generates the method's type.

The Ruby original::

    module Rolify::Dynamic
      def define_dynamic_method(role_name, resource)
        class_eval do
          define_method("is_#{role_name}?") do
            has_role?("#{role_name}")
          end if !method_defined?("is_#{role_name}?")
        end
      end

      pre :define_dynamic_method do |role_name, resource|
        type "is_#{role_name}?", "() -> %bool"
        true
      end
    end

Host method names cannot contain ``?``, so ``is_professor?`` becomes
``is_professor``.  The generated method is a *closure* over ``role_name``;
its IR registration types the capture from the closure cell, so the static
check of its body has a type for the free variable.
"""

from __future__ import annotations

from typing import Optional


def build_rolify(engine):
    """Create the engine-bound ``RolifyDynamic`` mixin module."""
    hb = engine.api()

    class RolifyDynamic:
        """Mixin granting dynamic role-query methods (a Ruby module)."""

        __hb_module__ = True

        def add_role(self, role_name):
            roles = self.__dict__.setdefault("_roles", set())
            roles.add(role_name)
            return role_name

        def remove_role(self, role_name):
            self.__dict__.setdefault("_roles", set()).discard(role_name)
            return role_name

        def has_role(self, role_name):
            return role_name in self.__dict__.get("_roles", set())

        def roles_list(self):
            return sorted(self.__dict__.get("_roles", set()))

        def define_dynamic_method(self, role_name, resource=None):
            """Create ``is_<role>`` (and ``is_<role>_of``) on the
            receiver's class, unless already defined."""
            cls = type(self)
            meth = f"is_{role_name}"
            if meth not in cls.__dict__:
                def dynamic(self):
                    return self.has_role(role_name)

                engine.define_method(cls, meth, dynamic)
            of_meth = f"is_{role_name}_of"
            if of_meth not in cls.__dict__:
                def dynamic_of(self, other):
                    return self.has_role(role_name)

                engine.define_method(cls, of_meth, dynamic_of)
            return None

    engine.register_class(RolifyDynamic, module=True)
    # The module's own query surface is a trusted library annotation.
    hb.annotate(RolifyDynamic, "has_role", "(String) -> %bool",
                app_level=False)
    hb.annotate(RolifyDynamic, "add_role", "(String) -> String",
                app_level=False)
    hb.annotate(RolifyDynamic, "remove_role", "(String) -> String",
                app_level=False)
    hb.annotate(RolifyDynamic, "roles_list", "() -> Array<String>",
                app_level=False)
    hb.annotate(RolifyDynamic, "define_dynamic_method",
                "(String, ?%any) -> nil", app_level=False, wrap=False)

    def typegen_pre(recv, role_name, resource=None):
        """The paper's pre-block: generate the dynamic methods' types.

        "We do not check for a previous type definition since adding the
        same type again is harmless."
        """
        cls = type(recv)
        hb.annotate(cls, f"is_{role_name}", "() -> %bool", check=True,
                    generated=True)
        hb.annotate(cls, f"is_{role_name}_of", "(%any) -> %bool",
                    check=True, generated=True)
        return True

    hb.pre(RolifyDynamic, "define_dynamic_method", typegen_pre)
    return RolifyDynamic
