"""Hummingbird — just-in-time static type checking for dynamic languages.

A from-scratch Python reproduction of Ren & Foster, PLDI 2016.  Type
annotations execute at run time; each annotated method's body is statically
type checked at its first call against the then-current type table; checks
are memoized and invalidated when the methods or signatures they depend on
change.  Metaprogramming that generates methods can generate their types
the same way.

Quickstart::

    from repro import Engine

    engine = Engine()
    hb = engine.api()

    class Greeter:
        @hb.typed("(String) -> String")
        def greet(self, name):
            return "hello, " + name

    Greeter().greet("world")     # first call: body statically checked
    Greeter().greet("again")     # cache hit: no re-check

Subpackages:

* :mod:`repro.core` — the Hummingbird engine (checker, cache, stats);
* :mod:`repro.rtypes` — the RDL type language;
* :mod:`repro.ril` — the IR front end;
* :mod:`repro.rdl` — contracts and method interception;
* :mod:`repro.formalism` — the paper's core calculus, executable;
* :mod:`repro.sqldb`, :mod:`repro.rails`, :mod:`repro.rolify`,
  :mod:`repro.rstruct` — substrates for the evaluation apps;
* :mod:`repro.apps` — the six subject apps;
* :mod:`repro.evalharness` — regenerates the paper's tables.
"""

from .core import (
    Api, ArgumentTypeError, CastError, Engine, EngineConfig,
    HummingbirdError, NoMethodBodyError, ReturnTypeError, StaticTypeError,
    TypeSignatureError,
)
from .rtypes import Sym

__version__ = "1.0.0"

__all__ = [
    "Api", "ArgumentTypeError", "CastError", "Engine", "EngineConfig",
    "HummingbirdError", "NoMethodBodyError", "ReturnTypeError",
    "StaticTypeError", "Sym", "TypeSignatureError", "__version__",
]
