"""``repro.snapshot`` — warm-state serialization for pre-fork serving.

A long-lived engine accumulates state worth money: memoized check
verdicts, per-site call plans with their learned class profiles and
kwargs layouts, promotion decisions, and tier-3 elision verdicts.  This
package round-trips that state through versioned, fingerprinted JSON
(extending the ``ril/json_io.py`` idiom) so a freshly forked or
freshly deployed worker warm-starts instead of re-paying profiling,
checking, and promotion from zero.

Soundness rule: a snapshot is advisory, never authoritative.  The world
fingerprint (type registry + hierarchy + semantics-affecting config)
gates the whole load, per-entity IR fingerprints gate each check
verdict and elision seed, and any mismatch — corrupt file, version
drift, stale fingerprint, unresolvable site — degrades to the exact
cold-start path the engine would have taken anyway.
"""

from .warmstate import (
    SNAPSHOT_FORMAT, SNAPSHOT_VERSION, SnapshotLoad, load_snapshot,
    save_snapshot, world_fingerprint,
)

__all__ = [
    "SNAPSHOT_FORMAT", "SNAPSHOT_VERSION", "SnapshotLoad",
    "load_snapshot", "save_snapshot", "world_fingerprint",
]
