"""Warm-state snapshots: save a warmed engine, warm-start a fresh one.

What gets serialized (the state a long-lived process paid for):

* **check verdicts** — every memoized static-check derivation, with its
  dependency edges (signature, field, and hierarchy reads) exactly as
  the :class:`~repro.core.cache.CheckCache` recorded them;
* **call plans** — per-site resolution results plus everything the site
  *learned*: hit counts, argument/return class profiles with their hit
  counts, kwargs layouts, and whether the site was promoted to tier 2;
* **elision verdicts** — the tier-3 analysis results attached to
  promoted sites, with their full resource lists so the restored
  wrapper deopts on exactly the mutations the original would have.

The format extends the ``ril/json_io.py`` idiom: plain JSON data,
``sort_keys`` dumps, sha256 fingerprints over position-free content.

Soundness is layered, and every layer fails *closed* to cold start:

1. **Envelope**: wrong format marker, wrong version, truncated or
   corrupt JSON → the whole snapshot is rejected and the engine is
   untouched.
2. **World fingerprint**: sha256 over the type registry (signatures +
   field types), the class hierarchy (parents, mixins, modules,
   typevars), and the semantics-affecting engine config.  Any drift —
   a retyped method, a new subclass, a different checking mode — means
   the saved verdicts were derived in a different world; the snapshot
   is rejected wholesale.
3. **Per-entity IR fingerprints**: the world fingerprint cannot see
   method *bodies* (IR registration is lazy and load-order dependent),
   so each check verdict records the owner + fingerprint of the body it
   checked, and each elision verdict records them for every
   ``("ir", ...)`` resource it consumed.  A mismatch skips just that
   entry — the site lazily re-checks or re-analyzes, which is the cold
   path and therefore sound.
4. **Per-site re-resolution**: restored plans never trust saved
   resolution results.  Each site's signature is re-resolved through
   the live hierarchy with a dependency trace, the checked bit is
   recomputed, and a site whose recomputed shape disagrees with the
   saved one is dropped.  A checked plan is only restored when its
   backing cache entry was restored too — a checked plan without a
   verdict would silently skip static checks.

Profiles reference live classes, which JSON cannot carry; they are
encoded as ``["app", name]`` (resolved through the engine's registered
app classes) or ``["builtin", name]`` (a fixed whitelist).  A profile
mentioning any other class is dropped and simply re-learned live.
"""

from __future__ import annotations

import io
import json
import hashlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.elide import Elision
from ..core.engine import Engine, _profile_eligible, _ret_profile_eligible
from ..core.plans import ARG_CHECK_NEVER, CallPlan, PlanKey
from ..rdl.registry import INSTANCE
from ..rdl.registry import INSTANCE

SNAPSHOT_FORMAT = "hummingbird-warm-state"
#: version 2: multi-profile elision verdicts (``guard_profiles`` chains
#: with optional unpinned slots + ``chain_conforms``) replaced the
#: single ``guard_profile``, and verdicts may carry ``("lin", cls)``
#: leaf-exactness resources.  Version-1 documents are rejected at the
#: envelope (fail closed to cold start) — their verdicts cannot express
#: the new pin semantics.
SNAPSHOT_VERSION = 2

#: builtin receiver/argument classes a profile may mention by name.
_BUILTIN_CLASSES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (int, float, bool, str, bytes, list, tuple, dict, set,
                frozenset, type(None))
}


# -- world fingerprint -------------------------------------------------------


def world_fingerprint(engine: Engine) -> str:
    """sha256 over everything a check derivation may have consulted.

    Reads the registry/hierarchy internals directly (not through the
    tracing accessors) — fingerprinting must not record dependency
    touches.  Callers hold ``engine.write_lock`` for a consistent view;
    the public entry points here take it themselves.
    """
    types = engine.types
    hier = engine.hier
    cfg = engine.config
    payload = {
        "sigs": sorted(
            [sig.owner, sig.name, sig.kind,
             [str(arm) for arm in sig.arms],
             bool(sig.check), bool(sig.generated)]
            for sig in types.sigs()),
        "fields": sorted(
            [owner, fname, str(ftype)]
            for (owner, fname), ftype in types._fields.items()),
        "hier": {
            "parent": sorted([c, p or ""]
                             for c, p in hier._parent.items()),
            "mixins": sorted([c, list(m)]
                             for c, m in hier._mixins.items()),
            "modules": sorted(hier._modules),
            "typevars": sorted([c, list(tv)]
                               for c, tv in hier._typevars.items()),
        },
        # Semantics-affecting knobs only: two engines that differ in
        # perf tuning (thresholds, specialization, elision) derive the
        # *same* verdicts, so those knobs do not poison reuse.
        "config": [bool(cfg.static_checking), bool(cfg.caching),
                   cfg.dynamic_arg_checks, cfg.dynamic_ret_checks,
                   bool(cfg.strict_nil), bool(cfg.narrowing)],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- shared helpers ----------------------------------------------------------


def _body_fingerprint(engine: Engine, recv_owner: str,
                      name: str) -> Tuple[Optional[str], Optional[str]]:
    """(owner, fingerprint) of the registered body a check of
    ``recv_owner#name`` derives from — the first hit on the ancestor
    walk, which is deterministic, so save and load agree or the entry
    is skipped."""
    cfgs = engine.cfgs
    if engine.hier.is_known(recv_owner):
        for ancestor in engine.hier.ancestors(recv_owner):
            mir = cfgs.lookup(ancestor, name)
            if mir is not None:
                return ancestor, mir.fingerprint
        return None, None
    mir = cfgs.lookup(recv_owner, name)
    if mir is not None:
        return recv_owner, mir.fingerprint
    return None, None


def _encode_class(engine: Engine, cls: type) -> Optional[List[str]]:
    name = cls.__name__
    if engine._app_classes.get(name) is cls:
        return ["app", name]
    if _BUILTIN_CLASSES.get(name) is cls:
        return ["builtin", name]
    return None


def _decode_class(engine: Engine, enc) -> Optional[type]:
    try:
        space, name = enc
    except (TypeError, ValueError):
        return None
    if space == "app":
        return engine._app_classes.get(name)
    if space == "builtin":
        return _BUILTIN_CLASSES.get(name)
    return None


def _encode_profile(engine: Engine,
                    profile: Tuple[type, ...]) -> Optional[list]:
    encoded = [_encode_class(engine, cls) for cls in profile]
    return None if any(enc is None for enc in encoded) else encoded


def _decode_profile(engine: Engine, encoded) -> Optional[Tuple[type, ...]]:
    decoded = tuple(_decode_class(engine, enc) for enc in encoded)
    return None if any(cls is None for cls in decoded) else decoded


# -- save --------------------------------------------------------------------


def _capture_checks(engine: Engine) -> List[dict]:
    records = []
    for entry in engine.cache.entries():
        recv_owner, name = entry.key
        body_owner, body_fp = _body_fingerprint(engine, recv_owner, name)
        if body_fp is None:
            continue  # nothing to pin the verdict's body against
        records.append({
            "key": list(entry.key),
            "deps": sorted(list(dep) for dep in entry.deps),
            "field_deps": sorted(list(dep) for dep in entry.field_deps),
            "hier_deps": sorted(entry.hier_deps),
            "body_owner": body_owner,
            "body_fp": body_fp,
        })
    return records


def _capture_plans(engine: Engine) -> List[dict]:
    plans = engine._plans
    if plans is None:
        return []
    spec = engine._specializer
    promoted = (set(key for key, _ in spec.promoted_entries())
                if spec is not None else set())
    records = []
    for key, plan in plans.items():
        profiles = []
        for profile in plan.profiles:
            enc = _encode_profile(engine, profile)
            if enc is not None:
                profiles.append(enc)
        profile_hits = []
        for profile, hits in plan.profile_hits.items():
            enc = _encode_profile(engine, profile)
            if enc is not None:
                profile_hits.append([enc, int(hits)])
        ret_profiles = []
        for rcls in plan.ret_profiles:  # single classes, not tuples
            enc = _encode_class(engine, rcls)
            if enc is not None:
                ret_profiles.append(enc)
        kw_layouts = []
        for (npos, names), layout in plan.kw_layouts.items():
            if layout is not None and not all(
                    isinstance(slot, str) for slot in layout):
                continue  # BoundDefault carries a live value; re-learn
            kw_layouts.append([[int(npos), list(names)],
                               list(layout) if layout is not None else None])
        records.append({
            "key": list(key),
            "hits": int(plan.hits),
            "checked": bool(plan.checked),
            "profiles": sorted(profiles),
            "profile_hits": sorted(profile_hits),
            "ret_profiles": sorted(ret_profiles),
            "kw_layouts": sorted(kw_layouts),
            "promoted": key in promoted,
        })
    return records


def _capture_elisions(engine: Engine) -> List[dict]:
    spec = engine._specializer
    if spec is None:
        return []
    records = []
    for key, elision in spec.promoted_entries():
        if elision is None:
            continue
        ir_fps = []
        for resource in elision.resources:
            if resource and resource[0] == "ir":
                _, owner, name = resource
                mir = engine.cfgs.lookup(owner, name)
                if mir is None:
                    # An ``("ir", ...)`` edge with no live CFG is a
                    # builtin-callee edge (e.g. ``Integer#+`` from the
                    # trusted-signature path): there is no body to
                    # fingerprint, only a deopt edge to keep — the
                    # ``callees`` chain below carries every consumed
                    # *body*'s fingerprint for load-time re-validation.
                    continue
                ir_fps.append([owner, name, mir.fingerprint])
        guard_profiles = None
        if elision.guard_profiles is not None:
            guard_profiles = []
            for chain in elision.guard_profiles:
                enc_chain: Optional[list] = []
                for cls in chain:
                    if cls is None:
                        enc_chain.append(None)  # unpinned slot
                        continue
                    enc = _encode_class(engine, cls)
                    if enc is None:
                        enc_chain = None
                        break
                    enc_chain.append(enc)
                if enc_chain is None:
                    guard_profiles = None
                    break  # unencodable pin; the site re-analyzes live
                guard_profiles.append(enc_chain)
            if guard_profiles is None:
                continue
        records.append({
            "key": list(key),
            "cache_guard": bool(elision.cache_guard),
            "frame": bool(elision.frame),
            "arg_check": bool(elision.arg_check),
            "ret_check": bool(elision.ret_check),
            "guard_profiles": guard_profiles,
            "chain_conforms": bool(elision.chain_conforms),
            "arity": elision.arity,
            "resources": sorted(list(r) for r in elision.resources),
            "callees": sorted(list(c) for c in elision.callees),
            "ir_fps": sorted(ir_fps),
        })
    return records


def save_snapshot(engine: Engine, path: Optional[str] = None) -> dict:
    """Serialize ``engine``'s warm state; optionally write it to
    ``path``.  Returns the snapshot document (JSON-compatible)."""
    with engine.write_lock:
        doc = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "fingerprint": world_fingerprint(engine),
            "checks": _capture_checks(engine),
            "plans": _capture_plans(engine),
            "elisions": _capture_elisions(engine),
        }
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, sort_keys=True, separators=(",", ":"))
    return doc


# -- load --------------------------------------------------------------------


@dataclass
class SnapshotLoad:
    """What a load attempt did — ``loaded`` False means the engine was
    left exactly as found (the clean cold-start fallback)."""

    loaded: bool
    reason: str = ""
    checks_restored: int = 0
    checks_skipped: int = 0
    plans_restored: int = 0
    plans_skipped: int = 0
    elisions_seeded: int = 0
    promotions: int = 0
    errors: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "loaded": self.loaded,
            "reason": self.reason,
            "checks_restored": self.checks_restored,
            "checks_skipped": self.checks_skipped,
            "plans_restored": self.plans_restored,
            "plans_skipped": self.plans_skipped,
            "elisions_seeded": self.elisions_seeded,
            "promotions": self.promotions,
        }


def _read_document(source) -> Tuple[Optional[dict], str]:
    if isinstance(source, dict):
        return source, ""
    if isinstance(source, (str, os.PathLike)):
        try:
            with io.open(source, "r", encoding="utf-8") as handle:
                return json.load(handle), ""
        except (OSError, ValueError, UnicodeDecodeError) as exc:
            return None, f"unreadable snapshot: {exc}"
    return None, f"unsupported snapshot source {type(source).__name__!r}"


def _live_body_fingerprint(engine: Engine, owner: str,
                           name: str) -> Optional[str]:
    """The live CFG fingerprint for ``owner#name``, registering the
    body on demand: CFGs are built lazily (at static-check or promotion
    time), so a fresh pre-traffic engine has none for *unchecked*
    methods — exactly the bodies the inter-procedural pass recursed
    into.  Unresolvable or unlowerable means ``None`` (fail closed)."""
    mir = engine.cfgs.lookup(owner, name)
    if mir is not None:
        return mir.fingerprint
    fn = engine.lookup_callable(owner, name, INSTANCE)
    if fn is None:
        return None
    try:
        mir = engine.cfgs.register_function(owner, name, fn)
    except Exception:  # noqa: BLE001 - unlowerable body: no fingerprint
        return None
    return mir.fingerprint if mir is not None else None


def _decode_elision(engine: Engine, rec: dict) -> Optional[Elision]:
    for owner, name, saved_fp in rec.get("ir_fps", []):
        if _live_body_fingerprint(engine, owner, name) != saved_fp:
            return None  # a consumed body changed; re-analyze live
    for owner, name, saved_fp in rec.get("callees", []):
        # The callee chain carries its own fingerprints; any drifted
        # link (a redefined depth-2 callee) voids the whole verdict.
        if _live_body_fingerprint(engine, owner, name) != saved_fp:
            return None
    guard_profiles = None
    if rec.get("guard_profiles") is not None:
        chains = []
        for enc_chain in rec["guard_profiles"]:
            chain: List[Optional[type]] = []
            for enc in enc_chain:
                if enc is None:
                    chain.append(None)  # unpinned slot
                    continue
                cls = _decode_class(engine, enc)
                if cls is None:
                    return None
                chain.append(cls)
            chains.append(tuple(chain))
        guard_profiles = tuple(chains)
        if not guard_profiles:
            return None  # a pin list with no chains guards nothing
    arity = rec.get("arity")
    return Elision(
        cache_guard=bool(rec["cache_guard"]),
        frame=bool(rec["frame"]),
        arg_check=bool(rec["arg_check"]),
        ret_check=bool(rec["ret_check"]),
        guard_profiles=guard_profiles,
        chain_conforms=bool(rec.get("chain_conforms", True)),
        arity=int(arity) if arity is not None else None,
        resources=tuple(tuple(r) for r in rec.get("resources", [])),
        callees=tuple(tuple(c) for c in rec.get("callees", [])),
    )


def _restore_checks(engine: Engine, doc: dict,
                    report: SnapshotLoad) -> set:
    restored = set()
    table_version = engine.types.version
    for rec in doc.get("checks", []):
        key = tuple(rec["key"])
        body_owner, body_fp = _body_fingerprint(engine, *key)
        if body_owner != rec["body_owner"] or body_fp != rec["body_fp"]:
            report.checks_skipped += 1
            continue
        engine.cache.store(
            key,
            deps={tuple(dep) for dep in rec["deps"]},
            field_deps={tuple(dep) for dep in rec["field_deps"]},
            hier_deps=set(rec["hier_deps"]),
            table_version=table_version)
        restored.add(key)
        report.checks_restored += 1
    return restored


def _restore_plan(engine: Engine, rec: dict, epoch: int,
                  elisions: Dict[PlanKey, Elision],
                  report: SnapshotLoad) -> None:
    key: PlanKey = tuple(rec["key"])  # type: ignore[assignment]
    def_owner, recv_owner, name, kind = key
    spec = engine._specializer
    plans = engine._plans

    # Re-resolve through the live world, tracing the dependency edges
    # the plan must carry — never trust the saved resolution.
    trace: List[tuple] = []
    resolved = engine.resolve_sig(recv_owner, name, kind, trace=trace)
    if resolved is None:
        resolved = engine.resolve_sig(def_owner, name, kind, trace=trace)
    sig_owner = sig = None
    checked = False
    if resolved is not None:
        sig_owner, sig = resolved
        if sig.check and engine.config.static_checking:
            # A checked plan skips the per-call jit_check; that is only
            # sound with a live memoized verdict backing it.
            if (not engine.config.caching
                    or (recv_owner, name) not in engine.cache):
                report.plans_skipped += 1
                return
            checked = True
    if checked != bool(rec["checked"]):
        report.plans_skipped += 1
        return  # resolution shape drifted from the saved world

    ret_checking = (sig is not None and not checked
                    and engine._ret_mode != ARG_CHECK_NEVER)
    plan = CallPlan(
        sig_owner, sig, checked, engine._arg_mode,
        sig is not None and _profile_eligible(sig),
        engine._ret_mode if ret_checking else ARG_CHECK_NEVER,
        ret_checking and _ret_profile_eligible(sig))
    plan.promote_at = (spec.promote_threshold(key) if spec is not None
                       else engine._spec_threshold)
    plan.hits = int(rec["hits"])
    if plan.profile_eligible:
        decoded = []
        for enc in rec.get("profiles", []):
            profile = _decode_profile(engine, enc)
            if profile is not None:
                decoded.append(profile)
        plan.profiles = frozenset(decoded)
        for enc, hits in rec.get("profile_hits", []):
            profile = _decode_profile(engine, enc)
            if profile is not None and profile in plan.profiles:
                plan.profile_hits[profile] = int(hits)
    if plan.ret_profile_eligible:
        decoded_classes = []
        for enc in rec.get("ret_profiles", []):
            rcls = _decode_class(engine, enc)
            if rcls is not None:
                decoded_classes.append(rcls)
        plan.ret_profiles = frozenset(decoded_classes)
    for shape, layout in rec.get("kw_layouts", []):
        npos, names = shape
        plan.kw_layouts[(int(npos), tuple(names))] = (
            tuple(layout) if layout is not None else None)

    if not plans.store(key, plan, trace, epoch=epoch):
        report.plans_skipped += 1
        return
    report.plans_restored += 1

    if not rec.get("promoted") or spec is None:
        return
    # Eager re-promotion: the saved site ran a specialized wrapper, so
    # rebuild it now rather than after promote_at fresh hits.  The
    # guard class comes from the plan's receiver owner (no live
    # receiver exists yet); any refusal leaves the site tier-1, which
    # re-promotes organically.
    guard_cls = engine.host_class(recv_owner)
    fn = engine.lookup_callable(def_owner, name, kind)
    if guard_cls is None or fn is None:
        return
    elision = elisions.get(key)
    if elision is not None and engine._elider is not None:
        engine._elider.seed(key, plan, elision)
        report.elisions_seeded += 1
    if spec.maybe_promote(key, plan, fn, None, guard_cls=guard_cls):
        report.promotions += 1


def load_snapshot(engine: Engine, source) -> SnapshotLoad:
    """Warm-start ``engine`` from ``source`` (a path or a snapshot
    document).  Any envelope-level mismatch returns ``loaded=False``
    with the engine untouched; per-entry mismatches skip just that
    entry.  Safe to call on a freshly built world before traffic."""
    doc, problem = _read_document(source)
    if doc is None:
        return SnapshotLoad(False, problem)
    if not isinstance(doc, dict) or doc.get("format") != SNAPSHOT_FORMAT:
        return SnapshotLoad(False, "not a warm-state snapshot")
    if doc.get("version") != SNAPSHOT_VERSION:
        return SnapshotLoad(
            False, f"snapshot version {doc.get('version')!r} != "
                   f"{SNAPSHOT_VERSION}")
    if not all(isinstance(doc.get(k), list)
               for k in ("checks", "plans", "elisions")):
        return SnapshotLoad(False, "malformed snapshot body")
    if engine.caches_disabled or not engine.config.caching:
        # The cache-free oracle recomputes everything by definition;
        # restoring verdicts into it would defeat its purpose.
        return SnapshotLoad(False, "engine runs cache-free; cold start")

    report = SnapshotLoad(True)
    with engine.write_lock:
        saved_fp = doc.get("fingerprint")
        live_fp = world_fingerprint(engine)
        if saved_fp != live_fp:
            return SnapshotLoad(
                False, "stale fingerprint: snapshot world differs from "
                       "the live registry/hierarchy/config")
        try:
            _restore_checks(engine, doc, report)
            elisions: Dict[PlanKey, Elision] = {}
            if engine._elider is not None:
                for rec in doc.get("elisions", []):
                    elision = _decode_elision(engine, rec)
                    if elision is not None:
                        elisions[tuple(rec["key"])] = elision
            plans = engine._plans
            if plans is not None:
                epoch = plans.epoch
                for rec in doc.get("plans", []):
                    _restore_plan(engine, rec, epoch, elisions, report)
        except Exception as exc:  # noqa: BLE001 - see below
            # A structurally broken record mid-restore (a snapshot that
            # passed the envelope checks but carries garbage — e.g. a
            # torn write that still parses as JSON).  Every entry
            # already restored is individually validated, but serving
            # from a *half*-warm engine makes later behavior depend on
            # where exactly the snapshot broke; degrade to a clean cold
            # start instead.  Warm state is pure performance — dropping
            # it is always sound, and plans.clear() fires the deopt
            # hook so any eagerly re-promoted site is demoted before we
            # return.
            engine.cache.clear()
            if engine._plans is not None:
                engine._plans.clear()
            rollback = SnapshotLoad(
                False, f"mid-restore failure "
                       f"({type(exc).__name__}: {exc}); rolled back to "
                       f"cold start")
            rollback.errors.append(f"{type(exc).__name__}: {exc}")
            return rollback
    return report
