"""The simplified method-body IR (our analog of the Ruby Intermediate
Language).

RIL "simplifies away many of the tedious features of Ruby" (paper,
section 4); this IR does the same for Python:

* every operator becomes a method call (``a + b`` is ``a.+(b)``, ``a[i]`` is
  ``a.[](i)``), so the checker has exactly one call rule;
* ``self.x`` reads/writes become instance-variable nodes, resolved by the
  checker against field types or getter/setter methods;
* lambdas and comprehension bodies become :class:`BlockFn` nodes — the code
  blocks of the paper;
* ``is None`` tests become :class:`IsNil` so the checker's narrowing
  extension can see them.

Every node carries a source position for error reporting.  The tree is
plain data: JSON serialization lives in :mod:`repro.ril.json_io` and
structural comparison in :mod:`repro.ril.diff`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple


@dataclass(frozen=True)
class Pos:
    """A source position (1-based line, 0-based column)."""

    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        return f"line {self.line}"


NOWHERE = Pos()


@dataclass(frozen=True)
class Node:
    """Base class for IR nodes.  ``pos`` is always the last field."""


# -- literals ---------------------------------------------------------------


@dataclass(frozen=True)
class NilLit(Node):
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class BoolLit(Node):
    value: bool
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class IntLit(Node):
    value: int
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class FloatLit(Node):
    value: float
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class StrLit(Node):
    value: str
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class SymLit(Node):
    """A symbol literal — ``Sym("owner")`` in host code, ``:owner`` in Ruby."""

    name: str
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class ArrayLit(Node):
    elems: Tuple[Node, ...]
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class HashLit(Node):
    pairs: Tuple[Tuple[Node, Node], ...]
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class RangeLit(Node):
    lo: Node
    hi: Node
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class StrFormat(Node):
    """An interpolated string: literal text parts and expression parts.

    Ruby's ``"#{e}"`` / Python's f-string.  Every expression part is
    implicitly converted with ``to_s``, so any type is accepted.
    """

    parts: Tuple[object, ...]  # str | Node
    pos: Pos = NOWHERE


# -- names ------------------------------------------------------------------


@dataclass(frozen=True)
class SelfRef(Node):
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class VarRead(Node):
    name: str
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class ConstRead(Node):
    """A capitalized name: a class reference (``User``) or constant."""

    name: str
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class IVarRead(Node):
    """``self.name`` in read position — an instance variable or a getter."""

    name: str
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class VarWrite(Node):
    name: str
    value: Node
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class IVarWrite(Node):
    """``self.name = e`` — an instance variable write or a setter call."""

    name: str
    value: Node
    pos: Pos = NOWHERE


# -- control flow -----------------------------------------------------------


@dataclass(frozen=True)
class Seq(Node):
    stmts: Tuple[Node, ...]
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class If(Node):
    test: Node
    then: Node
    orelse: Node
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class While(Node):
    test: Node
    body: Node
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class ForEach(Node):
    """``for var in iterable: body`` — iteration over an ``Array<T>``."""

    var: str
    iterable: Node
    body: Node
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class Return(Node):
    value: Optional[Node]
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class Break(Node):
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class Next(Node):
    """``continue`` (Ruby ``next``)."""

    pos: Pos = NOWHERE


@dataclass(frozen=True)
class Raise(Node):
    value: Optional[Node]
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class Handler(Node):
    """One ``rescue``/``except`` clause."""

    class_name: Optional[str]
    var: Optional[str]
    body: Node
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class Try(Node):
    body: Node
    handlers: Tuple[Handler, ...]
    orelse: Optional[Node]
    final: Optional[Node]
    pos: Pos = NOWHERE


# -- operations -------------------------------------------------------------


@dataclass(frozen=True)
class BoolOp(Node):
    """Short-circuit ``and`` / ``or`` over two or more parts."""

    op: str  # "and" | "or"
    parts: Tuple[Node, ...]
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class Not(Node):
    value: Node
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class IsNil(Node):
    """``e is None`` — kept distinct so narrowing can use it."""

    value: Node
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class IsA(Node):
    """``isinstance(e, C)`` — kept distinct so narrowing can use it."""

    value: Node
    class_name: str
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class BlockFn(Node):
    """A code block (lambda / comprehension body) passed to a method."""

    params: Tuple[str, ...]
    body: Node
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class Call(Node):
    """A method call ``recv.name(args) { block }``.

    ``recv is None`` means a bare call — resolved by the checker first as a
    call to a local variable holding a Proc, then as a method on ``self``
    (Ruby's implicit-self semantics, which is also how the paper's Talks
    app treats undefined variables as no-argument methods).
    """

    recv: Optional[Node]
    name: str
    args: Tuple[Node, ...]
    block: Optional[BlockFn]
    pos: Pos = NOWHERE


@dataclass(frozen=True)
class Cast(Node):
    """``hb.cast(e, "T")`` — the paper's ``rdl_cast``.  Statically the
    expression has type ``T``; dynamically the engine checks conformance."""

    value: Node
    type_text: str
    pos: Pos = NOWHERE


def seq(*stmts: Node) -> Node:
    """Collapse a statement list into a single node."""
    flat = [s for s in stmts if s is not None]
    if not flat:
        return NilLit()
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat), getattr(flat[0], "pos", NOWHERE))


def walk(node: Node) -> Iterator[Node]:
    """Yield ``node`` and all descendants, pre-order."""
    yield node
    for name in getattr(node, "__dataclass_fields__", ()):
        if name == "pos":
            continue
        value = getattr(node, name)
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, tuple):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)
                elif (isinstance(item, tuple) and len(item) == 2
                        and all(isinstance(x, Node) for x in item)):
                    yield from walk(item[0])
                    yield from walk(item[1])
