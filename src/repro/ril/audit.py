"""Provability audit: explain, per warm site, what tier 3 can and
cannot discharge — and why not.

The papers this repo reproduces against (Vitousek et al.'s transient
check optimization, Static Python's gradual soundness) report the large
majority of dynamic checks statically removable at observed types; this
tool measures how close the RIL dataflow gets on *our* workloads, and
names the blocker for every check it cannot discharge (``unknown_join``,
``non_leaf_nominal``, ``budget_exhausted``, ``whitelist_miss``, ...).
It is the static-analysis telemetry surface seeded by ROADMAP item 5.

Programmatic use (the bench harness imports these)::

    from repro.ril.audit import audit_engine, warm_serving_engine
    engine = warm_serving_engine("boxroom", "read")
    report = audit_engine(engine)
    report["summary"]["elision_rate"]   # proved / applicable check ops

CLI (a warm engine is built by replaying a serving mix)::

    PYTHONPATH=src python -m repro.ril.audit --app boxroom --mix read
    PYTHONPATH=src python -m repro.ril.audit --app rolify --json

The audit re-derives every verdict through
:meth:`repro.core.elide.Elider.audit_site` on the live world under the
engine's writer lock — it never mutates the engine, never consumes
snapshot seeds, and never installs wrappers.  The headline
``elision_rate`` is proved check ops (seed-free or profile-pinned) over
*applicable* check ops: a check that never runs at a site (an unchecked
plan's cache guard, a ``ret_check`` in ``never`` mode) counts in
neither numerator nor denominator.

This module is deliberately not exported from ``repro.ril``'s package
init: it imports ``repro.core`` eagerly, which the rest of the package
must not (the elider imports ``repro.ril.analysis`` lazily to break the
same cycle).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from ..core.elide import BLOCKED, CHECK_KINDS, Elider, PROVED, PROVED_PINNED

#: promotion threshold the CLI's warm-up engine uses — low enough that a
#: few passes over a serving mix promote every hot site.
WARM_THRESHOLD = 4

#: passes over the scenario thunk list during CLI warm-up.
WARM_PASSES = 10


def audit_engine(engine: Any) -> Dict[str, Any]:
    """Audit every live call-plan site of ``engine``.

    Returns ``{"sites": [...], "summary": {...}}`` where each site entry
    carries the per-check-kind status and blocking reasons, and the
    summary aggregates per kind, per blocker code, and into the headline
    ``elision_rate``.
    """
    elider = engine._elider if engine._elider is not None \
        else Elider(engine)
    plans = engine._plans
    sites: List[Dict[str, Any]] = []
    with engine.write_lock:
        live = dict(plans._plans) if plans is not None else {}
        for key, plan in sorted(live.items()):
            def_owner, recv_owner, name, kind = key
            fn = engine.lookup_callable(def_owner, name, kind) \
                or engine.lookup_callable(recv_owner, name, kind)
            if fn is None:
                continue  # no resolvable body; nothing to audit
            audit = elider.audit_site(key, plan, fn)
            sites.append({
                "key": list(key),
                "pinned": audit.pinned,
                "checks": {
                    ck: {"status": status, "reasons": list(reasons)}
                    for ck, (status, reasons) in sorted(
                        audit.checks.items())
                },
            })
    per_kind: Dict[str, Dict[str, int]] = {
        ck: {"proved": 0, "proved_pinned": 0, "not_applicable": 0,
             "blocked": 0}
        for ck in CHECK_KINDS}
    blockers: Dict[str, int] = {}
    proved = applicable = 0
    for site in sites:
        for ck, verdict in site["checks"].items():
            status = verdict["status"]
            per_kind[ck][status] += 1
            if status in (PROVED, PROVED_PINNED):
                proved += 1
                applicable += 1
            elif status == BLOCKED:
                applicable += 1
                for code in verdict["reasons"]:
                    blockers[code] = blockers.get(code, 0) + 1
    return {
        "sites": sites,
        "summary": {
            "sites": len(sites),
            "per_kind": per_kind,
            "blockers": dict(sorted(blockers.items())),
            "proved": proved,
            "applicable": applicable,
            "elision_rate": round(proved / applicable, 4)
            if applicable else 0.0,
        },
    }


def warm_serving_engine(app: str, mix: str = "read",
                        passes: int = WARM_PASSES,
                        threshold: int = WARM_THRESHOLD) -> Any:
    """Build one of the serving subject apps and replay ``passes``
    rounds of the ``mix`` scenario so hot sites promote; returns the
    warm engine ready for :func:`audit_engine`."""
    from ..core.engine import Engine, EngineConfig
    from ..serving import build_serving_world, scenario_thunks

    engine = Engine(EngineConfig(specialize_threshold=threshold))
    world = build_serving_world(app, engine=engine)
    thunks = scenario_thunks(world, mix)
    for _ in range(passes):
        for thunk in thunks:
            thunk()
    return engine


def _print_report(report: Dict[str, Any], *, verbose: bool) -> None:
    summary = report["summary"]
    print(f"sites audited: {summary['sites']}")
    print(f"check ops: {summary['proved']} proved of "
          f"{summary['applicable']} applicable "
          f"(elision rate {summary['elision_rate']})")
    print("\nper check kind:")
    for ck in CHECK_KINDS:
        counts = summary["per_kind"][ck]
        print(f"  {ck:<12} proved={counts['proved']:<4} "
              f"pinned={counts['proved_pinned']:<4} "
              f"blocked={counts['blocked']:<4} "
              f"n/a={counts['not_applicable']}")
    if summary["blockers"]:
        print("\nblocking reasons (check ops blocked by each):")
        for code, count in summary["blockers"].items():
            print(f"  {code:<20} {count}")
    if verbose:
        print("\nper site:")
        for site in report["sites"]:
            key = "#".join(str(part) for part in site["key"][:3])
            bits: List[str] = []
            for ck in CHECK_KINDS:
                verdict = site["checks"].get(ck)
                if verdict is None:
                    continue
                tag = {PROVED: "+", PROVED_PINNED: "~",
                       "not_applicable": "."}.get(
                    verdict["status"],
                    "!" + ",".join(verdict["reasons"]))
                bits.append(f"{ck}={tag}")
            print(f"  {key:<48} {' '.join(bits)}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ril.audit",
        description="Audit tier-3 check-elimination provability over a "
                    "warmed serving app.")
    parser.add_argument("--app", default="boxroom",
                        choices=("boxroom", "countries", "rolify"),
                        help="serving subject app to warm (default: "
                             "boxroom)")
    parser.add_argument("--mix", default="read",
                        choices=("read", "write", "mixed"),
                        help="scenario mix to replay (default: read)")
    parser.add_argument("--passes", type=int, default=WARM_PASSES,
                        help="warm-up passes over the scenario "
                             f"(default: {WARM_PASSES})")
    parser.add_argument("--threshold", type=int, default=WARM_THRESHOLD,
                        help="tier-2 promotion threshold during warm-up "
                             f"(default: {WARM_THRESHOLD})")
    parser.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")
    parser.add_argument("--verbose", action="store_true",
                        help="list every site's verdicts")
    args = parser.parse_args(argv)

    engine = warm_serving_engine(args.app, args.mix,
                                 passes=args.passes,
                                 threshold=args.threshold)
    report = audit_engine(engine)
    report["app"] = args.app
    report["mix"] = args.mix
    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(f"provability audit: {args.app} / {args.mix} "
              f"({args.passes} passes, threshold {args.threshold})")
        _print_report(report, verbose=args.verbose)
    return 0


if __name__ == "__main__":
    sys.exit(main())
