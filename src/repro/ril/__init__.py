"""``repro.ril`` — the intermediate-language front end (RIL analog).

Lowers host-language (Python) method bodies to a simplified IR
(:mod:`~repro.ril.ir`), with JSON round-tripping
(:mod:`~repro.ril.json_io`), a (class, method) → IR registry
(:mod:`~repro.ril.registry`), structural diffing for dev-mode
invalidation (:mod:`~repro.ril.diff`), and the tier-3 forward dataflow
pass that statically discharges per-call checks
(:mod:`~repro.ril.analysis`).
"""

from . import ir
from .diff import RegistryDiff, bodies_differ, diff_registries, \
    snapshot_fingerprints
from .json_io import dumps, fingerprint, from_json, loads, to_json
from .lower import LoweringError, lower_body, lower_expr, lower_function, \
    lower_stmt
from .registry import (
    CFGRegistry, MethodIR, ParamSpec, RegistrationError,
)
# analysis reaches back into repro.core (deps resources), so it must
# come after the registry/diff names repro.core.engine needs from this
# package during a core-first import.
from .analysis import AnalysisReport, analyze_method  # noqa: E402

__all__ = [
    "AnalysisReport", "CFGRegistry", "LoweringError", "MethodIR",
    "ParamSpec", "RegistrationError", "RegistryDiff", "analyze_method",
    "bodies_differ", "diff_registries", "dumps", "fingerprint", "from_json",
    "ir", "loads", "lower_body", "lower_expr", "lower_function",
    "lower_stmt", "snapshot_fingerprints", "to_json",
]
