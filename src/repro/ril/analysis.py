"""Tier-3 static check elimination: forward dataflow over RIL.

Tiers 1–2 *accelerate* the per-call work (plan lookup, profile guard,
check-cache membership) — this pass *eliminates* it.  When a tier-2 site
is promoted, :func:`analyze_method` runs a forward abstract
interpretation over the callee's lowered body, seeded by the site's
dominant profile (receiver class, argument classes), and reports which
per-call operations are statically discharged:

* **return classes** — the exact RDL class names the body can return.
  When every one of them conforms to the signature's return type, the
  compiled wrapper's dynamic return check (or return-profile guard) is
  provably dead and is omitted.
* **frame safety** — whether the body can re-enter intercepted code.
  The checked-frame push/pop around the call exists so *callees* can see
  whether their caller's body was statically checked; a body that
  provably never reaches an intercepted call (directly or through host
  code) does not need the frame at all.

The abstract domain maps each variable to an *exact RDL class name* or
``None`` (unknown).  Exactness rides the ``class_name_of`` quotient:
builtin names (``Integer``, ``String``, ``Array``, …) are exact because
the isinstance cascade maps every host subclass onto the builtin name,
while application nominals are *not* exact (a subclass value carries a
different name), so only the builtin quotient seeds facts.

Soundness contract: every mutable fact the pass reads is reported as a
:mod:`repro.core.deps` resource — signature slots (including negative
probes), linearizations, field types — plus an ``("ir", owner, name)``
edge per consulted callee body, so the glue layer
(:mod:`repro.core.elide`) can register the edges on the site's plan
token and any mutation deopts the elided site exactly like a tier-2
plan.

Documented trust boundary: methods of the builtin whitelist
(:data:`_SAFE_BUILTIN_RECEIVERS`) are assumed not to re-enter
intercepted code.  That is the same assumption the engine's own
dynamic checks make — builtin container/string operations that would
invoke a *wrapped* element dunder (``list.index`` calling a wrapped
``__eq__``) are outside the interception model, because the lowering
never emits direct dunder calls and annotations target named methods.
Merely *unregistered* host classes get no such trust: their methods are
opaque host code that may call intercepted methods, so any call on one
forfeits frame elision.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.deps import Resource, field_resource, ir_resource, lin_resource
from ..rdl.registry import INSTANCE
from ..rtypes.subtype import is_subtype
from ..rtypes.types import (
    AnyType, BoolType, BotType, ClassObjectType, FiniteHashType, GenericType,
    IntersectionType, MethodType, NilType, NominalType, SelfType,
    SingletonType, TupleType, Type, UnionType, VarType,
)
from .ir import (
    ArrayLit, BlockFn, BoolLit, BoolOp, Break, Call, Cast, ConstRead, FloatLit,
    ForEach, Handler, HashLit, If, IntLit, IsA, IsNil, IVarRead, IVarWrite,
    NilLit, Next, Node, Not, Raise, RangeLit, Return, SelfRef, Seq, StrFormat,
    StrLit, SymLit, Try, VarRead, VarWrite, While, walk,
)
from .registry import MethodIR

#: Builtin quotient names whose methods are trusted not to re-enter
#: intercepted code (they execute in the host runtime).  This is the
#: frame-safety whitelist: a call is frame-neutral only when both the
#: receiver's and every argument's class is in here (a builtin operator
#: with an application-class argument can dispatch to the argument's
#: reflected dunder, which is opaque).
_SAFE_BUILTIN_RECEIVERS = frozenset({
    "Integer", "Float", "Boolean", "String", "Symbol", "Array", "Hash",
    "Set", "Range", "NilClass", "Time",
})

#: Class names that are *exact* under the ``class_name_of`` quotient:
#: every host value whose class maps to the name keeps mapping to it in
#: any subclass, so a static fact "this expression has class N" is a
#: sound per-value guarantee.  Application nominals are excluded.
_EXACT_QUOTIENT = _SAFE_BUILTIN_RECEIVERS | {"Class", "Proc"}

#: Element classes yielded by ``for`` iteration over a builtin, when
#: statically known.  Array/Hash/Set elements are heterogeneous at the
#: class-name level, so they stay unknown.
_ITER_ELEM = {"Range": "Integer", "String": "String"}


def is_vacuous(t: Type) -> bool:
    """True when ``value_conforms(v, t, ...)`` holds for *every* value.

    ``SelfType`` is vacuous because the dynamic check resolves it to
    True unconditionally (``value_conforms``'s Self rule).
    """
    if isinstance(t, (AnyType, VarType, SelfType)):
        return True
    if isinstance(t, UnionType):
        return any(is_vacuous(a) for a in t.arms)
    if isinstance(t, IntersectionType):
        return all(is_vacuous(a) for a in t.arms)
    return False


def class_conforms(name: str, t: Type, hier, *,
                   strict_nil: bool = False) -> bool:
    """True when every value of RDL class ``name`` conforms to ``t``.

    The class-determined under-approximation of
    :func:`repro.rtypes.typeof.value_conforms`: whenever this returns
    True, the dynamic check is a provable no-op for values of that
    class.  Value-dependent expectations (singletons, tuples, finite
    hashes, generics with non-vacuous element types, structural types)
    answer False.
    """
    if isinstance(t, (AnyType, VarType, SelfType)):
        return True
    if name == "NilClass":
        # Mirrors value_conforms's None rule: nil conforms to anything
        # unless strict_nil is on.
        return (not strict_nil) or isinstance(t, NilType) or (
            isinstance(t, NominalType) and t.name == "NilClass") or (
            isinstance(t, UnionType)
            and any(class_conforms(name, a, hier, strict_nil=strict_nil)
                    for a in t.arms))
    if isinstance(t, (NilType, BotType)):
        return False
    if isinstance(t, UnionType):
        return any(class_conforms(name, a, hier, strict_nil=strict_nil)
                   for a in t.arms)
    if isinstance(t, IntersectionType):
        return all(class_conforms(name, a, hier, strict_nil=strict_nil)
                   for a in t.arms)
    if isinstance(t, BoolType):
        return name == "Boolean"
    if isinstance(t, MethodType):
        return name in ("Proc", "Class")  # both quotients imply callable
    if isinstance(t, GenericType):
        if not all(is_vacuous(a) for a in t.args):
            return False
        t = NominalType(t.name)
    if isinstance(t, NominalType):
        try:
            return is_subtype(NominalType(name), t, hier,
                              strict_nil=strict_nil)
        except Exception:
            return False
    # SingletonType / TupleType / FiniteHashType / ClassObjectType /
    # StructuralType are value-dependent.
    return False


def rdl_class_name(cls: type) -> str:
    """The RDL class name for host *class* ``cls``.

    Mirrors ``class_name_of``'s isinstance cascade (which depends only
    on the value's class), so ``rdl_class_name(type(v)) ==
    class_name_of(v)`` for every host value.
    """
    import datetime

    from ..rtypes.typeof import Sym

    if cls is type(None):
        return "NilClass"
    if issubclass(cls, bool):
        return "Boolean"
    if issubclass(cls, int):
        return "Integer"
    if issubclass(cls, float):
        return "Float"
    if issubclass(cls, str):
        return "String"
    if issubclass(cls, Sym):
        return "Symbol"
    if issubclass(cls, (list, tuple)):
        return "Array"
    if issubclass(cls, dict):
        return "Hash"
    if issubclass(cls, set):
        return "Set"
    if issubclass(cls, range):
        return "Range"
    if issubclass(cls, (datetime.datetime, datetime.date)):
        return "Time"
    if issubclass(cls, type):
        return "Class"
    # callable(v) is determined by __call__ appearing in type(v)'s MRO
    # dicts (the metaclass never participates for instances).
    if any("__call__" in c.__dict__ for c in cls.__mro__):
        return "Proc"
    return cls.__name__


def exact_class_of_type(t: Type) -> Optional[str]:
    """The single exact RDL class of every value of ``t``, or ``None``."""
    if isinstance(t, NilType):
        return "NilClass"
    if isinstance(t, BoolType):
        return "Boolean"
    if isinstance(t, SingletonType):
        return t.base if t.base in _EXACT_QUOTIENT else None
    if isinstance(t, NominalType):
        return t.name if t.name in _EXACT_QUOTIENT else None
    if isinstance(t, GenericType):
        return t.name if t.name in _EXACT_QUOTIENT else None
    if isinstance(t, TupleType):
        return "Array"
    if isinstance(t, FiniteHashType):
        return "Hash"
    if isinstance(t, ClassObjectType):
        return "Class"
    if isinstance(t, MethodType):
        return "Proc"
    return None


def always_returns(node: Node) -> bool:
    """True when every path through ``node`` returns or raises."""
    if isinstance(node, (Return, Raise)):
        return True
    if isinstance(node, Seq):
        return any(always_returns(s) for s in node.stmts)
    if isinstance(node, If):
        return always_returns(node.then) and always_returns(node.orelse)
    return False


def _assigned_names(node: Node) -> Set[str]:
    """Every local (and ``@``-prefixed ivar) name written under ``node``."""
    out: Set[str] = set()
    for n in walk(node):
        if isinstance(n, VarWrite):
            out.add(n.name)
        elif isinstance(n, IVarWrite):
            out.add("@" + n.name)
        elif isinstance(n, ForEach):
            out.add(n.var)
        elif isinstance(n, Handler) and n.var:
            out.add(n.var)
    return out


class AnalysisReport:
    """What the forward pass proved about one method body.

    ``ret_classes`` is a frozenset of exact RDL class names the body can
    return (``None`` when any path's class is unknown); implicit
    fall-through contributes ``NilClass``.  ``frame_elidable`` says the
    body provably never re-enters intercepted code.  ``resources`` is
    every DepGraph resource the verdicts read; ``callees`` the consulted
    callee bodies as ``(owner, name, fingerprint)``.
    """

    __slots__ = ("ret_classes", "frame_elidable", "resources", "callees")

    def __init__(self, ret_classes: Optional[frozenset],
                 frame_elidable: bool, resources: Tuple[Resource, ...],
                 callees: Tuple[Tuple[str, str, str], ...]) -> None:
        self.ret_classes = ret_classes
        self.frame_elidable = frame_elidable
        self.resources = resources
        self.callees = callees

    def __repr__(self) -> str:
        return (f"AnalysisReport(ret_classes={self.ret_classes!r}, "
                f"frame_elidable={self.frame_elidable})")


def analyze_method(engine, mir: MethodIR, self_class: str,
                   arg_classes: Optional[Sequence[Optional[str]]] = None
                   ) -> AnalysisReport:
    """Run the forward pass over ``mir`` for receiver class ``self_class``.

    ``arg_classes`` seeds the fixed parameters with the site's dominant
    profile (exact RDL class names, ``None`` for unknown slots); without
    it every parameter starts unknown, so a verdict that holds is
    profile-independent and needs no profile guard.
    """
    analysis = _Analysis(engine, self_class)
    analysis.seed(mir, arg_classes)
    analysis.visit(mir.body)
    if analysis.ret_unknown:
        ret_classes = None
    else:
        rets = set(analysis.rets)
        if not always_returns(mir.body):
            rets.add("NilClass")  # implicit fall-through returns nil/None
        ret_classes = frozenset(rets)
    return AnalysisReport(
        ret_classes=ret_classes,
        frame_elidable=analysis.frame,
        resources=tuple(dict.fromkeys(analysis.resources)),
        callees=tuple(dict.fromkeys(analysis.callees)),
    )


class _Analysis:
    """One forward walk: env of exact classes, frame flag, return set."""

    def __init__(self, engine, self_class: str) -> None:
        self.engine = engine
        self.hier = engine.hier
        self.self_class = self_class
        self.env: Dict[str, Optional[str]] = {}
        self.frame = True
        self.rets: Set[str] = set()
        self.ret_unknown = False
        self.resources: List[Resource] = []
        self.callees: List[Tuple[str, str, str]] = []

    def seed(self, mir: MethodIR,
             arg_classes: Optional[Sequence[Optional[str]]]) -> None:
        fixed = [p for p in mir.params if not p.vararg]
        if arg_classes:
            for i, p in enumerate(fixed):
                if i < len(arg_classes):
                    self.env[p.name] = arg_classes[i]
        for p in mir.params:
            if p.vararg:
                self.env[p.name] = "Array"  # *args is always a tuple
        for name, t in mir.captures.items():
            if isinstance(t, Type):
                self.env[name] = exact_class_of_type(t)

    # -- driver -------------------------------------------------------------

    def visit(self, node: Optional[Node]) -> Optional[str]:
        if node is None:
            return None
        method = self._DISPATCH.get(type(node))
        if method is None:
            # Unknown node kind: give up on everything it could do.
            self.frame = False
            return None
        return method(self, node)

    def _taint_unless_safe(self, cls: Optional[str]) -> None:
        if cls not in _SAFE_BUILTIN_RECEIVERS:
            self.frame = False

    # -- literals -----------------------------------------------------------

    def _nil(self, node) -> str:
        return "NilClass"

    def _bool(self, node) -> str:
        return "Boolean"

    def _int(self, node) -> str:
        return "Integer"

    def _float(self, node) -> str:
        return "Float"

    def _str(self, node) -> str:
        return "String"

    def _sym(self, node) -> str:
        return "Symbol"

    def _array(self, node: ArrayLit) -> str:
        for e in node.elems:
            self.visit(e)
        return "Array"

    def _hash(self, node: HashLit) -> str:
        for k, v in node.pairs:
            self.visit(k)
            self.visit(v)
        return "Hash"

    def _range(self, node: RangeLit) -> str:
        self.visit(node.lo)
        self.visit(node.hi)
        return "Range"

    def _strformat(self, node: StrFormat) -> str:
        for part in node.parts:
            if isinstance(part, Node):
                # Interpolation invokes the part's __format__/__str__ —
                # opaque unless the class is a trusted builtin.
                self._taint_unless_safe(self.visit(part))
        return "String"

    # -- names --------------------------------------------------------------

    def _selfref(self, node) -> str:
        return self.self_class

    def _varread(self, node: VarRead) -> Optional[str]:
        return self.env.get(node.name)

    def _constread(self, node) -> Optional[str]:
        return None  # a global binding read runs no code; value unknown

    def _ivar_opaque(self, name: str) -> bool:
        """True when reading/writing ``self.name`` can run code."""
        pycls = self.engine.host_class(self.self_class)
        if pycls is None:
            return True
        for c in pycls.__mro__:
            if c is object:
                continue
            d = c.__dict__
            if name in d or "__getattr__" in d or "__getattribute__" in d \
                    or "__setattr__" in d:
                return True
        return False

    def _ivarread(self, node: IVarRead) -> Optional[str]:
        if self._ivar_opaque(node.name):
            # A getter / property / __getattr__ hook: arbitrary code.
            self.frame = False
            return None
        known = self.env.get("@" + node.name, _UNTRACKED)
        if known is not _UNTRACKED:
            return known
        # A plain attribute read: class comes from the declared field
        # type, resolved through the linearization with negative probes
        # recorded (a field_type added later on a closer ancestor must
        # deopt the site).
        self.resources.append(lin_resource(self.self_class))
        t = None
        try:
            ancestors = tuple(self.hier.ancestors(self.self_class))
        except Exception:
            ancestors = (self.self_class,)
        for ancestor in ancestors:
            self.resources.append(field_resource(ancestor, node.name))
            t = self.engine.types.lookup_field(ancestor, node.name)
            if t is not None:
                break
        return exact_class_of_type(t) if t is not None else None

    def _ivarwrite(self, node: IVarWrite) -> Optional[str]:
        cls = self.visit(node.value)
        if self._ivar_opaque(node.name):
            self.frame = False
        # Track the written class locally: a later read in this body
        # sees the store, not the declared field type.
        self.env["@" + node.name] = cls
        return cls

    def _varwrite(self, node: VarWrite) -> Optional[str]:
        cls = self.visit(node.value)
        self.env[node.name] = cls
        return cls

    # -- control flow -------------------------------------------------------

    def _seq(self, node: Seq) -> Optional[str]:
        out: Optional[str] = "NilClass"
        for s in node.stmts:
            out = self.visit(s)
        return out

    def _if(self, node: If) -> Optional[str]:
        # The truthiness test invokes __bool__ — opaque off-whitelist.
        self._taint_unless_safe(self.visit(node.test))
        base = dict(self.env)
        then_cls = self.visit(node.then)
        env_then = self.env
        self.env = dict(base)
        else_cls = self.visit(node.orelse)
        env_else = self.env
        if always_returns(node.then):
            self.env = env_else
        elif always_returns(node.orelse):
            self.env = env_then
        else:
            self.env = {k: v for k, v in env_then.items()
                        if env_else.get(k, _UNTRACKED) == v}
        return then_cls if then_cls == else_cls else None

    def _while(self, node) -> Optional[str]:
        for name in _assigned_names(node.body):
            self.env[name] = None  # widen: loop-carried values unknown
        self._taint_unless_safe(self.visit(node.test))
        self.visit(node.body)
        return "NilClass"

    def _foreach(self, node: ForEach) -> Optional[str]:
        it_cls = self.visit(node.iterable)
        # Iteration drives the iterable's iterator protocol.
        self._taint_unless_safe(it_cls)
        for name in _assigned_names(node.body):
            self.env[name] = None
        self.env[node.var] = _ITER_ELEM.get(it_cls)
        self.visit(node.body)
        return "NilClass"

    def _return(self, node: Return) -> Optional[str]:
        cls = self.visit(node.value) if node.value is not None else "NilClass"
        if cls is None:
            self.ret_unknown = True
        else:
            self.rets.add(cls)
        return None

    def _break(self, node) -> Optional[str]:
        return None

    def _raise(self, node: Raise) -> Optional[str]:
        if node.value is not None:
            self.visit(node.value)
        return None  # never produces a value (and never returns)

    def _try(self, node: Try) -> Optional[str]:
        # An exception may transfer control from any point, so every
        # name written anywhere in the statement is unknown throughout.
        for part in (node.body, *node.handlers, node.orelse, node.final):
            if part is not None:
                for name in _assigned_names(part):
                    self.env[name] = None
        self.visit(node.body)
        for h in node.handlers:
            if h.var:
                self.env[h.var] = None
            self.visit(h.body)
        if node.orelse is not None:
            self.visit(node.orelse)
        if node.final is not None:
            self.visit(node.final)
        return None

    # -- operations ---------------------------------------------------------

    def _boolop(self, node: BoolOp) -> Optional[str]:
        classes = [self.visit(p) for p in node.parts]
        for cls in classes[:-1]:  # every non-final part is truth-tested
            self._taint_unless_safe(cls)
        first = classes[0]
        return first if all(c == first for c in classes) else None

    def _not(self, node: Not) -> str:
        self._taint_unless_safe(self.visit(node.value))
        return "Boolean"

    def _isnil(self, node: IsNil) -> str:
        self.visit(node.value)
        return "Boolean"

    def _isa(self, node: IsA) -> str:
        self.visit(node.value)
        return "Boolean"

    def _blockfn(self, node: BlockFn) -> str:
        # A block not passed to a call is inert until invoked; bare
        # invocation is opaque anyway (see _call), so don't analyze it.
        return "Proc"

    def _cast(self, node: Cast) -> Optional[str]:
        self.visit(node.value)
        from ..rtypes import parse_type
        try:
            return exact_class_of_type(parse_type(node.type_text))
        except Exception:
            return None

    def _analyze_block(self, block: BlockFn,
                       elem_cls: Optional[str] = None) -> None:
        """Fold a passed block's body effects in (a builtin receiver may
        invoke it any number of times, with our frame on the stack)."""
        saved = self.env
        self.env = dict(saved)
        for p in block.params:
            self.env[p] = elem_cls
        for name in _assigned_names(block.body):
            if name not in block.params:
                self.env[name] = None
        self.visit(block.body)
        self.env = saved

    def _call(self, node: Call) -> Optional[str]:
        arg_classes = [self.visit(a) for a in node.args]
        if node.recv is None:
            # Bare call: a local Proc or implicit-self dispatch — both
            # opaque (the Proc body is unknown; implicit self is an
            # interceptable app method).
            if node.block is not None:
                self._analyze_block(node.block)
            self.frame = False
            return None
        recv_cls = self.visit(node.recv)
        if recv_cls is None:
            if node.block is not None:
                self._analyze_block(node.block)
            self.frame = False
            return None
        interceptable = self.engine.host_class(recv_cls) is not None
        if interceptable or recv_cls not in _SAFE_BUILTIN_RECEIVERS:
            # An intercepted callee reads the checked-frame stack before
            # pushing its own frame; an unregistered host class is
            # opaque code that may reach one.  Either way the frame must
            # stay.
            self.frame = False
        else:
            # Trusted builtin receiver — but a builtin operator with an
            # off-whitelist argument can dispatch to the argument's
            # reflected dunder (1 + obj -> obj.__radd__).
            for cls in arg_classes:
                self._taint_unless_safe(cls)
        if node.block is not None:
            self._analyze_block(node.block, _ITER_ELEM.get(recv_cls))
        return self._call_ret(recv_cls, node.name, interceptable)

    def _call_ret(self, recv_cls: str, name: str,
                  interceptable: bool) -> Optional[str]:
        """Infer the call's return class from the resolved signature."""
        engine = self.engine
        resolved = engine.resolve_sig(recv_cls, name, INSTANCE,
                                      trace=self.resources)
        if resolved is None:
            return None
        sig_owner, sig = resolved
        # Body edges: a redefinition of the callee (same signature, new
        # body) must still deopt — the return fact was derived while
        # *this* body was installed.
        self.resources.append(ir_resource(recv_cls, name))
        if sig_owner != recv_cls:
            self.resources.append(ir_resource(sig_owner, name))
        mir = engine.cfgs.lookup(recv_cls, name) or engine.cfgs.lookup(
            sig_owner, name)
        if mir is not None:
            self.callees.append((mir.owner, mir.name, mir.fingerprint))
        # The signature's return type is trusted when the callee's body
        # is statically checked against it (sig.check), or when the
        # callee is a builtin (not interceptable: the signature *is* the
        # specification).  An unchecked app method's annotation is a
        # claim nobody verified — no trust.
        if not (sig.check or not interceptable):
            return None
        ret_cls: Optional[str] = None
        for arm in sig.intersection():
            cls = exact_class_of_type(arm.ret)
            if cls is None or (ret_cls is not None and cls != ret_cls):
                return None
            ret_cls = cls
        return ret_cls

    _DISPATCH = {
        NilLit: _nil, BoolLit: _bool, IntLit: _int, FloatLit: _float,
        StrLit: _str, SymLit: _sym, ArrayLit: _array, HashLit: _hash,
        RangeLit: _range, StrFormat: _strformat, SelfRef: _selfref,
        VarRead: _varread, ConstRead: _constread, IVarRead: _ivarread,
        IVarWrite: _ivarwrite, VarWrite: _varwrite, Seq: _seq, If: _if,
        While: _while, ForEach: _foreach, Return: _return, Break: _break,
        Next: _break, Raise: _raise, Try: _try, BoolOp: _boolop, Not: _not,
        IsNil: _isnil, IsA: _isa, BlockFn: _blockfn, Cast: _cast, Call: _call,
    }


#: Sentinel distinguishing "tracked as unknown" from "never tracked".
_UNTRACKED = object()
