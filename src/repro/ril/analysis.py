"""Tier-3 static check elimination: forward dataflow over RIL.

Tiers 1–2 *accelerate* the per-call work (plan lookup, profile guard,
check-cache membership) — this pass *eliminates* it.  When a tier-2 site
is promoted, :func:`analyze_method` runs a forward abstract
interpretation over the callee's lowered body, seeded by one of the
site's observed profiles (receiver class, argument classes), and reports
which per-call operations are statically discharged:

* **return classes** — the exact RDL class names the body can return.
  When every one of them conforms to the signature's return type, the
  compiled wrapper's dynamic return check (or return-profile guard) is
  provably dead and is omitted.
* **frame safety** — whether the body can re-enter intercepted code.
  The checked-frame push/pop around the call exists so *callees* can see
  whether their caller's body was statically checked; a body that
  provably never reaches an intercepted call (directly or through host
  code) does not need the frame at all.
* **blockers** — for everything it could *not* prove, a
  ``(reason, detail)`` pair (``unknown_join``, ``non_leaf_nominal``,
  ``budget_exhausted``, ``whitelist_miss``, ``opaque_code``, …) so the
  provability audit (``python -m repro.ril.audit``) can explain every
  unproved check at every warm site.

The abstract domain maps each variable to a small *finite set* of exact
RDL class names (``AbsVal = Optional[FrozenSet[str]]``), or ``None`` for
unknown.  Joins at ``if``/loop merge points take the set union, widening
to unknown only past :data:`_MAX_CLASS_SET` members — so facts provable
on all branches survive the merge instead of being dropped.  Loops run a
bounded fixpoint (:data:`_LOOP_PASSES` passes) before widening; on
non-convergence the body is re-visited once under the widened
environment so every recorded fact (returns, frame taints, resources)
derives from a sound loop invariant.

Exactness has two sources:

* the **builtin quotient** (:data:`_EXACT_QUOTIENT`): builtin names are
  exact because the isinstance cascade maps every host subclass onto the
  builtin name;
* **leaf application nominals**: a class the hierarchy knows has no
  subclass and is mixed into nothing is exact *today*.  Every such proof
  records a ``("lin", cls)`` resource, so registering a subclass deopts
  each elision that relied on leafness.  Modules never qualify —
  ``include_module`` splices them under existing classes without a
  new-class registration.

Inter-procedural depth: a call on a known receiver first trusts the
*declared* return type when the callee's own checks guarantee it
(``sig.check``, or a non-interceptable builtin).  When declaration alone
is inexact, the pass recurses into the dispatched callee's own RIL body
— up to :data:`_MAX_CALLEE_DEPTH` levels and :data:`_CALLEE_BUDGET`
bodies per site — resolving the body through the host class ``__mro__``
(the IR registry's probe order can disagree with dispatch for
intermediate overrides).  Every link is an ``("ir", owner, name)``
resource and a fingerprinted entry in ``callees``, so redefining any
callee in the chain deopts the caller's elision.

Soundness contract: every mutable fact the pass reads is reported as a
:mod:`repro.core.deps` resource — signature slots (including negative
probes), linearizations (both ancestor walks and leafness), field types
— plus the ``("ir", owner, name)`` edges, so the glue layer
(:mod:`repro.core.elide`) can register the edges on the site's plan
token and any mutation deopts the elided site exactly like a tier-2
plan.

Documented trust boundary: methods of the builtin whitelist
(:data:`_SAFE_BUILTIN_RECEIVERS`) are assumed not to re-enter
intercepted code.  That is the same assumption the engine's own
dynamic checks make — builtin container/string operations that would
invoke a *wrapped* element dunder (``list.index`` calling a wrapped
``__eq__``) are outside the interception model, because the lowering
never emits direct dunder calls and annotations target named methods.
Merely *unregistered* host classes get no such trust: their methods are
opaque host code that may call intercepted methods, so any call on one
forfeits frame elision.

Nil permissiveness: :func:`class_conforms` mirrors the dynamic check's
permissive-nil rule, so exactness derived from declared types admits a
nil witness in permissive mode.  The hole is benign for every consumer
here: (1) return-conformance proofs are self-healing — where a body can
return nil in place of a predicted class, nil *also* conforms to the
declared return type under the same permissiveness, so the discharged
check would have passed anyway; (2) ``NilClass`` is on the safe-receiver
whitelist, so frame judgments are unaffected; (3) dispatching a method
on ``None`` raises before any elided check could run.  The analysis
never claims more than the dynamic checks it replaces would enforce.
"""

from __future__ import annotations

from typing import (
    Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple,
)

from ..core.deps import Resource, field_resource, ir_resource, lin_resource
from ..rdl.registry import INSTANCE
from ..rtypes.subtype import is_subtype
from ..rtypes.types import (
    AnyType, BoolType, BotType, ClassObjectType, FiniteHashType, GenericType,
    IntersectionType, MethodType, NilType, NominalType, SelfType,
    SingletonType, TupleType, Type, UnionType, VarType,
)
from .ir import (
    ArrayLit, BlockFn, BoolLit, BoolOp, Break, Call, Cast, ConstRead, FloatLit,
    ForEach, Handler, HashLit, If, IntLit, IsA, IsNil, IVarRead, IVarWrite,
    NilLit, Next, Node, Not, Raise, RangeLit, Return, SelfRef, Seq, StrFormat,
    StrLit, SymLit, Try, VarRead, VarWrite, While, walk,
)
from .registry import MethodIR

#: An abstract value: a finite set of exact RDL class names, or None
#: (unknown).  Sets are capped at :data:`_MAX_CLASS_SET` members.
AbsVal = Optional[FrozenSet[str]]

#: Joins widen to unknown past this many distinct classes.  Small on
#: purpose: conformance proofs and compiled guard chains are O(set
#: size), and real branches rarely produce more than two classes.
_MAX_CLASS_SET = 4

#: Inter-procedural recursion limits.  Depth bounds the callee chain
#: through any single path; the budget bounds total bodies analyzed per
#: site so wide call fans cannot blow up promotion time.
_MAX_CALLEE_DEPTH = 3
_CALLEE_BUDGET = 6

#: Bounded loop fixpoint passes before widening to unknown.
_LOOP_PASSES = 4

#: Blocker reasons surfaced by the provability audit.
BLOCK_UNKNOWN_JOIN = "unknown_join"
BLOCK_NON_LEAF = "non_leaf_nominal"
BLOCK_BUDGET = "budget_exhausted"
BLOCK_WHITELIST = "whitelist_miss"
BLOCK_OPAQUE = "opaque_code"
BLOCK_CONFORMANCE = "conformance"
BLOCK_NO_IR = "no_ir"

#: A blocker: (reason constant, human-readable detail).
Blocker = Tuple[str, str]

#: Builtin quotient names whose methods are trusted not to re-enter
#: intercepted code (they execute in the host runtime).  This is the
#: frame-safety whitelist: a call is frame-neutral only when both the
#: receiver's and every argument's class is in here (a builtin operator
#: with an application-class argument can dispatch to the argument's
#: reflected dunder, which is opaque).
_SAFE_BUILTIN_RECEIVERS = frozenset({
    "Integer", "Float", "Boolean", "String", "Symbol", "Array", "Hash",
    "Set", "Range", "NilClass", "Time",
})

#: Class names that are *exact* under the ``class_name_of`` quotient:
#: every host value whose class maps to the name keeps mapping to it in
#: any subclass, so a static fact "this expression has class N" is a
#: sound per-value guarantee.  Application nominals are excluded here;
#: hierarchy *leaves* additionally become exact through
#: :func:`classes_of_type`, which records the ``("lin", cls)`` edge.
_EXACT_QUOTIENT = _SAFE_BUILTIN_RECEIVERS | {"Class", "Proc"}

#: Element classes yielded by ``for`` iteration over a builtin, when
#: statically known.  Array/Hash/Set elements are heterogeneous at the
#: class-name level, so they stay unknown.
_ITER_ELEM = {"Range": "Integer", "String": "String"}


def is_vacuous(t: Type) -> bool:
    """True when ``value_conforms(v, t, ...)`` holds for *every* value.

    ``SelfType`` is vacuous because the dynamic check resolves it to
    True unconditionally (``value_conforms``'s Self rule).
    """
    if isinstance(t, (AnyType, VarType, SelfType)):
        return True
    if isinstance(t, UnionType):
        return any(is_vacuous(a) for a in t.arms)
    if isinstance(t, IntersectionType):
        return all(is_vacuous(a) for a in t.arms)
    return False


def class_conforms(name: str, t: Type, hier: Any, *,
                   strict_nil: bool = False) -> bool:
    """True when every value of RDL class ``name`` conforms to ``t``.

    The class-determined under-approximation of
    :func:`repro.rtypes.typeof.value_conforms`: whenever this returns
    True, the dynamic check is a provable no-op for values of that
    class.  Value-dependent expectations (singletons, tuples, finite
    hashes, generics with non-vacuous element types, structural types)
    answer False.
    """
    if isinstance(t, (AnyType, VarType, SelfType)):
        return True
    if name == "NilClass":
        # Mirrors value_conforms's None rule: nil conforms to anything
        # unless strict_nil is on.
        return (not strict_nil) or isinstance(t, NilType) or (
            isinstance(t, NominalType) and t.name == "NilClass") or (
            isinstance(t, UnionType)
            and any(class_conforms(name, a, hier, strict_nil=strict_nil)
                    for a in t.arms))
    if isinstance(t, (NilType, BotType)):
        return False
    if isinstance(t, UnionType):
        return any(class_conforms(name, a, hier, strict_nil=strict_nil)
                   for a in t.arms)
    if isinstance(t, IntersectionType):
        return all(class_conforms(name, a, hier, strict_nil=strict_nil)
                   for a in t.arms)
    if isinstance(t, BoolType):
        return name == "Boolean"
    if isinstance(t, MethodType):
        return name in ("Proc", "Class")  # both quotients imply callable
    if isinstance(t, GenericType):
        if not all(is_vacuous(a) for a in t.args):
            return False
        t = NominalType(t.name)
    if isinstance(t, NominalType):
        try:
            return bool(is_subtype(NominalType(name), t, hier,
                                   strict_nil=strict_nil))
        except Exception:
            return False
    # SingletonType / TupleType / FiniteHashType / ClassObjectType /
    # StructuralType are value-dependent.
    return False


def rdl_class_name(cls: type[Any]) -> str:
    """The RDL class name for host *class* ``cls``.

    Mirrors ``class_name_of``'s isinstance cascade (which depends only
    on the value's class), so ``rdl_class_name(type(v)) ==
    class_name_of(v)`` for every host value.
    """
    import datetime

    from ..rtypes.typeof import Sym

    if cls is type(None):
        return "NilClass"
    if issubclass(cls, bool):
        return "Boolean"
    if issubclass(cls, int):
        return "Integer"
    if issubclass(cls, float):
        return "Float"
    if issubclass(cls, str):
        return "String"
    if issubclass(cls, Sym):
        return "Symbol"
    if issubclass(cls, (list, tuple)):
        return "Array"
    if issubclass(cls, dict):
        return "Hash"
    if issubclass(cls, set):
        return "Set"
    if issubclass(cls, range):
        return "Range"
    if issubclass(cls, (datetime.datetime, datetime.date)):
        return "Time"
    if issubclass(cls, type):
        return "Class"
    # callable(v) is determined by __call__ appearing in type(v)'s MRO
    # dicts (the metaclass never participates for instances).
    if any("__call__" in c.__dict__ for c in cls.__mro__):
        return "Proc"
    return cls.__name__


def exact_class_of_type(t: Type) -> Optional[str]:
    """The single exact RDL class of every value of ``t``, or ``None``.

    Builtin-quotient exactness only; leaf-nominal exactness (which needs
    the hierarchy and records a resource) lives in
    :func:`classes_of_type`.
    """
    if isinstance(t, NilType):
        return "NilClass"
    if isinstance(t, BoolType):
        return "Boolean"
    if isinstance(t, SingletonType):
        return t.base if t.base in _EXACT_QUOTIENT else None
    if isinstance(t, NominalType):
        return t.name if t.name in _EXACT_QUOTIENT else None
    if isinstance(t, GenericType):
        return t.name if t.name in _EXACT_QUOTIENT else None
    if isinstance(t, TupleType):
        return "Array"
    if isinstance(t, FiniteHashType):
        return "Hash"
    if isinstance(t, ClassObjectType):
        return "Class"
    if isinstance(t, MethodType):
        return "Proc"
    return None


def leaf_exact(name: str, hier: Any,
               resources: Optional[List[Resource]] = None) -> bool:
    """Is nominal ``name`` exact because the hierarchy knows it is a leaf?

    Records the ``("lin", name)`` resource into ``resources`` when
    granting exactness, so registering a subclass (which bumps the
    parent's linearization resource) deopts the proof.  Modules never
    qualify: ``include_module`` can splice one under existing classes
    without any new-class registration.
    """
    if hier is None or not hier.is_known(name):
        return False
    if hier.is_module(name):
        return False
    if not hier.is_leaf(name):
        return False
    if resources is not None:
        resources.append(lin_resource(name))
    return True


def classes_of_type(t: Type, hier: Any = None,
                    resources: Optional[List[Resource]] = None,
                    blockers: Optional[List[Blocker]] = None) -> AbsVal:
    """The finite set of exact classes a value of ``t`` can have.

    Decomposes unions into a capped set; every arm must itself be exact
    (builtin quotient, or a hierarchy leaf — recorded as a
    ``("lin", cls)`` resource).  Returns ``None`` past the cap or when
    any arm is inexact, recording a blocker for the audit.
    """
    if isinstance(t, UnionType):
        out: Set[str] = set()
        for a in t.arms:
            part = classes_of_type(a, hier, resources, blockers)
            if part is None:
                return None
            out |= part
            if len(out) > _MAX_CLASS_SET:
                if blockers is not None:
                    blockers.append((BLOCK_UNKNOWN_JOIN,
                                     f"union wider than {_MAX_CLASS_SET}"))
                return None
        return frozenset(out)
    one = exact_class_of_type(t)
    if one is not None:
        return frozenset({one})
    if isinstance(t, NominalType):
        if leaf_exact(t.name, hier, resources):
            return frozenset({t.name})
        if blockers is not None:
            blockers.append((BLOCK_NON_LEAF, t.name))
    return None


def always_returns(node: Optional[Node]) -> bool:
    """True when every path through ``node`` returns or raises."""
    if isinstance(node, (Return, Raise)):
        return True
    if isinstance(node, Seq):
        return any(always_returns(s) for s in node.stmts)
    if isinstance(node, If):
        return always_returns(node.then) and always_returns(node.orelse)
    return False


def _assigned_names(node: Node) -> Set[str]:
    """Every local (and ``@``-prefixed ivar) name written under ``node``."""
    out: Set[str] = set()
    for n in walk(node):
        if isinstance(n, VarWrite):
            out.add(n.name)
        elif isinstance(n, IVarWrite):
            out.add("@" + n.name)
        elif isinstance(n, ForEach):
            out.add(n.var)
        elif isinstance(n, Handler) and n.var:
            out.add(n.var)
    return out


def join_vals(a: AbsVal, b: AbsVal) -> AbsVal:
    """Join two abstract values; widen to unknown past the set cap."""
    if a is None or b is None:
        return None
    merged = a | b
    return merged if len(merged) <= _MAX_CLASS_SET else None


class AnalysisReport:
    """What the forward pass proved about one method body.

    ``ret_classes`` is a frozenset of exact RDL class names the body can
    return (``None`` when any path's class is unknown); implicit
    fall-through contributes ``NilClass``.  ``frame_elidable`` says the
    body provably never re-enters intercepted code.  ``resources`` is
    every DepGraph resource the verdicts read; ``callees`` the consulted
    callee bodies as ``(owner, name, fingerprint)``; ``blockers`` the
    deduplicated ``(reason, detail)`` pairs for everything unprovable.
    """

    __slots__ = ("ret_classes", "frame_elidable", "resources", "callees",
                 "blockers")

    def __init__(self, ret_classes: Optional[FrozenSet[str]],
                 frame_elidable: bool, resources: Tuple[Resource, ...],
                 callees: Tuple[Tuple[str, str, str], ...],
                 blockers: Tuple[Blocker, ...] = ()) -> None:
        self.ret_classes = ret_classes
        self.frame_elidable = frame_elidable
        self.resources = resources
        self.callees = callees
        self.blockers = blockers

    def __repr__(self) -> str:
        return (f"AnalysisReport(ret_classes={self.ret_classes!r}, "
                f"frame_elidable={self.frame_elidable}, "
                f"blockers={self.blockers!r})")


#: A seed for one fixed parameter: an exact class name, a finite set of
#: them, or None (unknown).
ArgSeed = Optional[object]


def _seed_val(seed: ArgSeed) -> AbsVal:
    if seed is None:
        return None
    if isinstance(seed, str):
        return frozenset({seed})
    if isinstance(seed, frozenset):
        return seed if len(seed) <= _MAX_CLASS_SET else None
    return None


def analyze_method(engine: Any, mir: MethodIR, self_class: str,
                   arg_classes: Optional[Sequence[ArgSeed]] = None
                   ) -> AnalysisReport:
    """Run the forward pass over ``mir`` for receiver class ``self_class``.

    ``arg_classes`` seeds the fixed parameters with one of the site's
    observed profiles — entries are exact RDL class names, finite
    frozensets of them, or ``None`` for unknown slots; without it every
    parameter starts unknown, so a verdict that holds is
    profile-independent and needs no profile guard.
    """
    analysis = _Analysis(engine, self_class)
    analysis.seed(mir, arg_classes)
    analysis.visit(mir.body)
    ret_classes: Optional[FrozenSet[str]]
    if analysis.ret_unknown:
        ret_classes = None
    else:
        rets = set(analysis.rets)
        if not always_returns(mir.body):
            rets.add("NilClass")  # implicit fall-through returns nil/None
        ret_classes = frozenset(rets)
    return AnalysisReport(
        ret_classes=ret_classes,
        frame_elidable=analysis.frame,
        resources=tuple(dict.fromkeys(analysis.resources)),
        callees=tuple(dict.fromkeys(analysis.callees)),
        blockers=tuple(dict.fromkeys(analysis.blockers)),
    )


class _Analysis:
    """One forward walk: env of exact class sets, frame flag, return set.

    ``depth``/``active``/``budget`` thread the inter-procedural state:
    child analyses (callee bodies) share the caller's resource, callee,
    and blocker lists but keep their own environment and return state.
    """

    def __init__(self, engine: Any, self_class: str, *,
                 depth: int = 0,
                 active: Optional[Set[Tuple[str, str]]] = None,
                 budget: Optional[List[int]] = None,
                 resources: Optional[List[Resource]] = None,
                 callees: Optional[List[Tuple[str, str, str]]] = None,
                 blockers: Optional[List[Blocker]] = None) -> None:
        self.engine = engine
        self.hier = engine.hier
        self.self_class = self_class
        self.env: Dict[str, AbsVal] = {}
        self.frame = True
        self.rets: Set[str] = set()
        self.ret_unknown = False
        self.depth = depth
        self.active: Set[Tuple[str, str]] = (
            active if active is not None else set())
        self.budget: List[int] = (
            budget if budget is not None else [_CALLEE_BUDGET])
        self.resources: List[Resource] = (
            resources if resources is not None else [])
        self.callees: List[Tuple[str, str, str]] = (
            callees if callees is not None else [])
        self.blockers: List[Blocker] = (
            blockers if blockers is not None else [])

    def seed(self, mir: MethodIR,
             arg_classes: Optional[Sequence[ArgSeed]]) -> None:
        fixed = [p for p in mir.params if not p.vararg]
        if arg_classes:
            for i, p in enumerate(fixed):
                if i < len(arg_classes):
                    self.env[p.name] = _seed_val(arg_classes[i])
        for p in mir.params:
            if p.vararg:
                self.env[p.name] = frozenset({"Array"})  # *args is a tuple
        for name, t in mir.captures.items():
            if isinstance(t, Type):
                self.env[name] = classes_of_type(
                    t, self.hier, self.resources, self.blockers)

    # -- driver -------------------------------------------------------------

    def visit(self, node: Optional[Node]) -> AbsVal:
        if node is None:
            return None
        method = self._DISPATCH.get(type(node))
        if method is None:
            # Unknown node kind: give up on everything it could do.
            self.frame = False
            self.blockers.append((BLOCK_OPAQUE, type(node).__name__))
            return None
        return method(self, node)

    def _taint_unless_safe(self, val: AbsVal, why: str) -> None:
        if val is None or not val <= _SAFE_BUILTIN_RECEIVERS:
            if self.frame:
                self.blockers.append((BLOCK_WHITELIST, why))
            self.frame = False

    # -- literals -----------------------------------------------------------

    def _nil(self, node: Node) -> AbsVal:
        return frozenset({"NilClass"})

    def _bool(self, node: Node) -> AbsVal:
        return frozenset({"Boolean"})

    def _int(self, node: Node) -> AbsVal:
        return frozenset({"Integer"})

    def _float(self, node: Node) -> AbsVal:
        return frozenset({"Float"})

    def _str(self, node: Node) -> AbsVal:
        return frozenset({"String"})

    def _sym(self, node: Node) -> AbsVal:
        return frozenset({"Symbol"})

    def _array(self, node: ArrayLit) -> AbsVal:
        for e in node.elems:
            self.visit(e)
        return frozenset({"Array"})

    def _hash(self, node: HashLit) -> AbsVal:
        for k, v in node.pairs:
            self.visit(k)
            self.visit(v)
        return frozenset({"Hash"})

    def _range(self, node: RangeLit) -> AbsVal:
        self.visit(node.lo)
        self.visit(node.hi)
        return frozenset({"Range"})

    def _strformat(self, node: StrFormat) -> AbsVal:
        for part in node.parts:
            if isinstance(part, Node):
                # Interpolation invokes the part's __format__/__str__ —
                # opaque unless the class is a trusted builtin.
                self._taint_unless_safe(self.visit(part), "str interpolation")
        return frozenset({"String"})

    # -- names --------------------------------------------------------------

    def _selfref(self, node: Node) -> AbsVal:
        # Exact: the compiled wrapper's entry guard pins type(recv).
        return frozenset({self.self_class})

    def _varread(self, node: VarRead) -> AbsVal:
        return self.env.get(node.name)

    def _constread(self, node: Node) -> AbsVal:
        return None  # a global binding read runs no code; value unknown

    def _ivar_opaque(self, name: str) -> bool:
        """True when reading/writing ``self.name`` can run code."""
        pycls = self.engine.host_class(self.self_class)
        if pycls is None:
            return True
        for c in pycls.__mro__:
            if c is object:
                continue
            d = c.__dict__
            if name in d or "__getattr__" in d or "__getattribute__" in d \
                    or "__setattr__" in d:
                return True
        return False

    def _ivarread(self, node: IVarRead) -> AbsVal:
        if self._ivar_opaque(node.name):
            # A getter / property / __getattr__ hook: arbitrary code.
            if self.frame:
                self.blockers.append(
                    (BLOCK_OPAQUE, f"@{node.name} access intercepted"))
            self.frame = False
            return None
        tracked = "@" + node.name
        if tracked in self.env:
            # Tracked by a prior write in this body — even when tracked
            # as unknown (None), the store shadows the declared type.
            return self.env[tracked]
        # A plain attribute read: class comes from the declared field
        # type, resolved through the linearization with negative probes
        # recorded (a field_type added later on a closer ancestor must
        # deopt the site).
        self.resources.append(lin_resource(self.self_class))
        t = None
        try:
            ancestors = tuple(self.hier.ancestors(self.self_class))
        except Exception:
            ancestors = (self.self_class,)
        for ancestor in ancestors:
            self.resources.append(field_resource(ancestor, node.name))
            t = self.engine.types.lookup_field(ancestor, node.name)
            if t is not None:
                break
        if t is None:
            return None
        return classes_of_type(t, self.hier, self.resources, self.blockers)

    def _ivarwrite(self, node: IVarWrite) -> AbsVal:
        val = self.visit(node.value)
        if self._ivar_opaque(node.name):
            if self.frame:
                self.blockers.append(
                    (BLOCK_OPAQUE, f"@{node.name} write intercepted"))
            self.frame = False
        # Track the written class locally: a later read in this body
        # sees the store, not the declared field type.
        self.env["@" + node.name] = val
        return val

    def _varwrite(self, node: VarWrite) -> AbsVal:
        val = self.visit(node.value)
        self.env[node.name] = val
        return val

    # -- control flow -------------------------------------------------------

    def _seq(self, node: Seq) -> AbsVal:
        out: AbsVal = frozenset({"NilClass"})
        for s in node.stmts:
            out = self.visit(s)
        return out

    def _if(self, node: If) -> AbsVal:
        # The truthiness test invokes __bool__ — opaque off-whitelist.
        self._taint_unless_safe(self.visit(node.test), "if truthiness test")
        base = dict(self.env)
        then_val = self.visit(node.then)
        env_then = self.env
        self.env = dict(base)
        else_val = self.visit(node.orelse)
        env_else = self.env
        if always_returns(node.then):
            self.env = env_else
        elif always_returns(node.orelse):
            self.env = env_then
        else:
            # Phi: join both arms' values per name; names present on only
            # one side are dropped (a later read falls back to the
            # declared-type path for ivars, unknown for locals).
            merged: Dict[str, AbsVal] = {}
            for k in env_then.keys() & env_else.keys():
                tv, ev = env_then[k], env_else[k]
                j = join_vals(tv, ev)
                if j is None and (tv is not None or ev is not None):
                    self.blockers.append(
                        (BLOCK_UNKNOWN_JOIN, f"if-join on {k}"))
                merged[k] = j
            self.env = merged
        return join_vals(then_val, else_val)

    def _widen_assigned(self, body: Node) -> None:
        for name in _assigned_names(body):
            self.env[name] = None

    def _fixpoint_body(self, body: Node,
                       pre_visit: Optional[Callable[[], None]] = None
                       ) -> None:
        """Bounded fixpoint over a loop body in the set domain.

        Bodies containing ``Break``/``Next`` publish mid-body states the
        whole-body-exit join can't see — those fall back to upfront
        widening.  On non-convergence within :data:`_LOOP_PASSES`,
        assigned names widen to unknown and the body runs one final time
        under the widened environment, so every recorded fact (returns,
        frame taints, resources) derives from a sound loop invariant —
        the visitors are monotone in the environment, so the final pass
        subsumes anything recorded under the narrower interim states.
        """
        if any(isinstance(n, (Break, Next)) for n in walk(body)):
            self._widen_assigned(body)
            if pre_visit is not None:
                pre_visit()
            self.visit(body)
            return
        assigned = _assigned_names(body)
        entry = dict(self.env)
        for _ in range(_LOOP_PASSES):
            before = dict(self.env)
            if pre_visit is not None:
                pre_visit()
            self.visit(body)
            merged = dict(before)
            changed = False
            for name in assigned:
                old = before.get(name)
                new = join_vals(old, self.env.get(name))
                # The loop may run zero times: the post-state joins the
                # entry state for every assigned name too.
                new = join_vals(new, entry.get(name)) if name in entry \
                    else join_vals(new, None)
                if new != old:
                    changed = True
                merged[name] = new
            self.env = merged
            if not changed:
                return  # last pass ran under the fixpoint env — sound
        for name in assigned:
            if self.env.get(name) is not None:
                self.blockers.append(
                    (BLOCK_UNKNOWN_JOIN, f"loop widen on {name}"))
            self.env[name] = None
        if pre_visit is not None:
            pre_visit()
        self.visit(body)
        # The final visit leaves last-write values in the env, which miss
        # the zero-iteration case — re-widen so post-loop reads stay sound
        # (the visit itself still recorded returns/taints under the sound
        # widened invariant).
        for name in assigned:
            self.env[name] = None

    def _while(self, node: While) -> AbsVal:
        def pre() -> None:
            self._taint_unless_safe(self.visit(node.test),
                                    "while truthiness test")

        pre()
        self._fixpoint_body(node.body, pre)
        return frozenset({"NilClass"})

    def _foreach(self, node: ForEach) -> AbsVal:
        it_val = self.visit(node.iterable)
        # Iteration drives the iterable's iterator protocol.
        self._taint_unless_safe(it_val, "for-iteration protocol")
        elem: AbsVal = None
        if it_val is not None and len(it_val) == 1:
            elem_name = _ITER_ELEM.get(next(iter(it_val)))
            if elem_name is not None:
                elem = frozenset({elem_name})

        entry_bound = node.var in self.env
        entry_val = self.env.get(node.var)

        def pre() -> None:
            self.env[node.var] = elem

        pre()
        self._fixpoint_body(node.body, pre)
        # Post-loop value of the loop variable: the fixpoint value when
        # the body reassigns it, else the element class — joined with the
        # pre-loop binding for the zero-iteration case (an *unbound*
        # pre-loop var raises on a post-loop read, so that path needs no
        # account).
        post = self.env.get(node.var)
        if entry_bound:
            post = join_vals(post, entry_val)
        self.env[node.var] = post
        return frozenset({"NilClass"})

    def _return(self, node: Return) -> AbsVal:
        val = self.visit(node.value) if node.value is not None \
            else frozenset({"NilClass"})
        if val is None:
            self.ret_unknown = True
        else:
            self.rets |= val
        return None

    def _break(self, node: Node) -> AbsVal:
        return None

    def _raise(self, node: Raise) -> AbsVal:
        if node.value is not None:
            self.visit(node.value)
        return None  # never produces a value (and never returns)

    def _try(self, node: Try) -> AbsVal:
        # An exception may transfer control from any point, so every
        # name written anywhere in the statement is unknown throughout.
        for part in (node.body, *node.handlers, node.orelse, node.final):
            if part is not None:
                self._widen_assigned(part)
        self.visit(node.body)
        for h in node.handlers:
            if h.var:
                self.env[h.var] = None
            self.visit(h.body)
        if node.orelse is not None:
            self.visit(node.orelse)
        if node.final is not None:
            self.visit(node.final)
        return None

    # -- operations ---------------------------------------------------------

    def _boolop(self, node: BoolOp) -> AbsVal:
        vals = [self.visit(p) for p in node.parts]
        for val in vals[:-1]:  # every non-final part is truth-tested
            self._taint_unless_safe(val, "boolop truthiness test")
        # `a and b` / `a or b` can yield any operand: join over all of
        # them is the sound result in the set domain.
        out = vals[0]
        for val in vals[1:]:
            out = join_vals(out, val)
        return out

    def _not(self, node: Not) -> AbsVal:
        self._taint_unless_safe(self.visit(node.value), "not truthiness test")
        return frozenset({"Boolean"})

    def _isnil(self, node: IsNil) -> AbsVal:
        self.visit(node.value)
        return frozenset({"Boolean"})

    def _isa(self, node: IsA) -> AbsVal:
        self.visit(node.value)
        return frozenset({"Boolean"})

    def _blockfn(self, node: BlockFn) -> AbsVal:
        # A block not passed to a call is inert until invoked; bare
        # invocation is opaque anyway (see _call), so don't analyze it.
        return frozenset({"Proc"})

    def _cast(self, node: Cast) -> AbsVal:
        self.visit(node.value)
        from ..rtypes import parse_type
        try:
            return classes_of_type(parse_type(node.type_text), self.hier,
                                   self.resources, self.blockers)
        except Exception:
            return None

    def _analyze_block(self, block: BlockFn,
                       elem: AbsVal = None) -> None:
        """Fold a passed block's body effects in (a builtin receiver may
        invoke it any number of times, with our frame on the stack)."""
        saved = self.env
        self.env = dict(saved)
        for p in block.params:
            self.env[p] = elem
        for name in _assigned_names(block.body):
            if name not in block.params:
                self.env[name] = None
        self.visit(block.body)
        self.env = saved

    def _call(self, node: Call) -> AbsVal:
        arg_vals = [self.visit(a) for a in node.args]
        if node.recv is None:
            # Bare call: a local Proc or implicit-self dispatch — both
            # opaque (the Proc body is unknown; implicit self is an
            # interceptable app method).
            if node.block is not None:
                self._analyze_block(node.block)
            if self.frame:
                self.blockers.append(
                    (BLOCK_WHITELIST, f"bare call {node.name}"))
            self.frame = False
            return None
        recv = self.visit(node.recv)
        if recv is None:
            if node.block is not None:
                self._analyze_block(node.block)
            if self.frame:
                self.blockers.append(
                    (BLOCK_WHITELIST, f".{node.name} on unknown receiver"))
            self.frame = False
            return None
        # Frame judgment is set-wide: if *any* possible receiver class
        # is interceptable or off the whitelist, the frame must stay.
        any_unsafe = False
        for cname in sorted(recv):
            interceptable = self.engine.host_class(cname) is not None
            if interceptable or cname not in _SAFE_BUILTIN_RECEIVERS:
                # An intercepted callee reads the checked-frame stack
                # before pushing its own frame; an unregistered host
                # class is opaque code that may reach one.
                if self.frame and not any_unsafe:
                    self.blockers.append(
                        (BLOCK_WHITELIST, f"{cname}.{node.name}"))
                any_unsafe = True
        if any_unsafe:
            self.frame = False
        else:
            # Trusted builtin receiver — but a builtin operator with an
            # off-whitelist argument can dispatch to the argument's
            # reflected dunder (1 + obj -> obj.__radd__).
            for val in arg_vals:
                self._taint_unless_safe(val, f"argument to .{node.name}")
        if node.block is not None:
            elem: AbsVal = None
            if len(recv) == 1:
                elem_name = _ITER_ELEM.get(next(iter(recv)))
                if elem_name is not None:
                    elem = frozenset({elem_name})
            self._analyze_block(node.block, elem)
        # Return set: capped union of each possible receiver's result.
        out: Set[str] = set()
        for cname in sorted(recv):
            interceptable = self.engine.host_class(cname) is not None
            part = self._call_ret(cname, node.name, interceptable, arg_vals)
            if part is None:
                return None
            out |= part
            if len(out) > _MAX_CLASS_SET:
                self.blockers.append(
                    (BLOCK_UNKNOWN_JOIN,
                     f".{node.name} return set wider than {_MAX_CLASS_SET}"))
                return None
        return frozenset(out)

    def _call_ret(self, recv_cls: str, name: str, interceptable: bool,
                  arg_vals: List[AbsVal]) -> AbsVal:
        """Infer the call's return classes, or None if unknown.

        First trusts the *declared* return type when the callee's own
        checks guarantee it (``sig.check``, or a non-interceptable
        builtin whose signature is the specification).  When declaration
        alone is inexact, recurses into the dispatched callee's RIL body
        under the depth/budget limits.
        """
        engine = self.engine
        resolved = engine.resolve_sig(recv_cls, name, INSTANCE,
                                      trace=self.resources)
        if resolved is None:
            if interceptable:
                return self._callee_body_ret(recv_cls, name, arg_vals)
            self.blockers.append(
                (BLOCK_NO_IR, f"{recv_cls}.{name} has no signature"))
            return None
        sig_owner, sig = resolved
        # Body edges: a redefinition of the callee (same signature, new
        # body) must still deopt — the return fact was derived while
        # *this* body was installed.
        self.resources.append(ir_resource(recv_cls, name))
        if sig_owner != recv_cls:
            self.resources.append(ir_resource(sig_owner, name))
        mir = engine.cfgs.lookup(recv_cls, name) or engine.cfgs.lookup(
            sig_owner, name)
        if mir is not None:
            self.callees.append((mir.owner, mir.name, mir.fingerprint))
        # The signature's return type is trusted when the callee's body
        # is statically checked against it (sig.check), or when the
        # callee is a builtin (not interceptable: the signature *is* the
        # specification).  An unchecked app method's annotation is a
        # claim nobody verified — no trust.
        if sig.check or not interceptable:
            out: Set[str] = set()
            exact = True
            any_arm = False
            for arm in sig.intersection():
                # Sound arm exclusion: the dynamic check only ever picks
                # an arm every argument conforms to, so an arm some
                # argument position provably *cannot* satisfy (no class
                # in the known set conforms, even permissively) never
                # contributes its return type.
                if not self._arm_possible(arm, arg_vals):
                    continue
                any_arm = True
                part = classes_of_type(arm.ret, self.hier, self.resources,
                                       self.blockers)
                if part is None:
                    exact = False
                    break
                out |= part
            if exact and any_arm and out and len(out) <= _MAX_CLASS_SET:
                return frozenset(out)
        if not interceptable:
            # A builtin with an inexact declared return: there is no RIL
            # body to recurse into.
            self.blockers.append(
                (BLOCK_CONFORMANCE, f"{recv_cls}.{name} return inexact"))
            return None
        return self._callee_body_ret(recv_cls, name, arg_vals)

    def _arm_possible(self, arm: MethodType, arg_vals: List[AbsVal]) -> bool:
        """Could this intersection arm match a call with these arguments?

        False only on a proof of impossibility: the arity can never
        match, or some position's entire class set fails (permissive)
        conformance — permissive-fails implies strict-fails, so
        exclusion is sound under either nil mode.
        """
        if not arm.accepts_arity(len(arg_vals)):
            return False
        for j, val in enumerate(arg_vals):
            if val is None:
                continue
            t = arm.param_type_at(j)
            if t is None:
                continue
            if not any(class_conforms(c, t, self.hier) for c in val):
                return False
        return True

    def _callee_body_ret(self, recv_cls: str, name: str,
                         arg_vals: List[AbsVal]) -> AbsVal:
        """Recurse into the dispatched callee body (inter-procedural).

        Resolves the *dispatched* body by walking the host class
        ``__mro__`` — the IR registry's (receiver, declared-owner)
        two-probe order can disagree with dispatch when an intermediate
        class overrides the method, so it is not used here.
        """
        if self.depth + 1 > _MAX_CALLEE_DEPTH:
            self.blockers.append(
                (BLOCK_BUDGET,
                 f"{recv_cls}.{name} past depth {_MAX_CALLEE_DEPTH}"))
            return None
        if self.budget[0] <= 0:
            self.blockers.append(
                (BLOCK_BUDGET, f"{recv_cls}.{name} callee budget exhausted"))
            return None
        engine = self.engine
        pycls = engine.host_class(recv_cls)
        if pycls is None:
            self.blockers.append((BLOCK_NO_IR, f"{recv_cls} not registered"))
            return None
        owner_name: Optional[str] = None
        raw: Any = None
        for k in pycls.__mro__[:-1]:
            if name in k.__dict__:
                raw = k.__dict__[name]
                owner_name = k.__name__
                break
        if raw is None or owner_name is None:
            self.blockers.append(
                (BLOCK_NO_IR, f"{recv_cls}.{name} not on host class"))
            return None
        fn = getattr(raw, "__func__", raw)
        inner = getattr(fn, "__hb_original__", None)
        if inner is not None:
            fn = inner
        key = (owner_name, name)
        if key in self.active:
            # Recursive cycle: cannot conclude anything about the return.
            self.blockers.append(
                (BLOCK_BUDGET, f"{owner_name}.{name} recursive cycle"))
            return None
        self.resources.append(ir_resource(owner_name, name))
        mir = engine.cfgs.lookup(owner_name, name)
        if mir is None:
            try:
                mir = engine.cfgs.register_function(owner_name, name, fn)
            except Exception:
                mir = None
        if mir is None:
            self.blockers.append(
                (BLOCK_NO_IR, f"{owner_name}.{name} not lowerable"))
            return None
        self.callees.append((mir.owner, mir.name, mir.fingerprint))
        self.budget[0] -= 1
        self.active.add(key)
        try:
            child = _Analysis(
                engine, recv_cls,
                depth=self.depth + 1, active=self.active, budget=self.budget,
                resources=self.resources, callees=self.callees,
                blockers=self.blockers)
            child.seed(mir, list(arg_vals))
            child.visit(mir.body)
            if child.ret_unknown:
                return None
            names = set(child.rets)
            if not always_returns(mir.body):
                names.add("NilClass")
            if len(names) > _MAX_CLASS_SET:
                self.blockers.append(
                    (BLOCK_UNKNOWN_JOIN,
                     f"{owner_name}.{name} return set wider than cap"))
                return None
            return frozenset(names)
        finally:
            self.active.discard(key)

    _DISPATCH: Dict[type[Node], Callable[["_Analysis", Any], AbsVal]] = {
        NilLit: _nil, BoolLit: _bool, IntLit: _int, FloatLit: _float,
        StrLit: _str, SymLit: _sym, ArrayLit: _array, HashLit: _hash,
        RangeLit: _range, StrFormat: _strformat, SelfRef: _selfref,
        VarRead: _varread, ConstRead: _constread, IVarRead: _ivarread,
        IVarWrite: _ivarwrite, VarWrite: _varwrite, Seq: _seq, If: _if,
        While: _while, ForEach: _foreach, Return: _return, Break: _break,
        Next: _break, Raise: _raise, Try: _try, BoolOp: _boolop, Not: _not,
        IsNil: _isnil, IsA: _isa, BlockFn: _blockfn, Cast: _cast, Call: _call,
    }
