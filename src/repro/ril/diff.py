"""Structural IR diffing for development-mode reloading.

Paper section 4 ("Cache Invalidation"): when Rails development mode reloads
a file, Hummingbird compares each method's new body against the old one
using the RIL CFGs, invalidating only methods whose bodies actually
changed, plus their dependents, plus dependents of removed methods.  These
helpers compute exactly those three sets from two registry snapshots.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from .registry import CFGRegistry, MethodIR

Key = Tuple[str, str]


def bodies_differ(old: MethodIR, new: MethodIR) -> bool:
    """True when the two bodies differ structurally (positions ignored)."""
    return (old.fingerprint != new.fingerprint
            or old.params != new.params)


def snapshot_fingerprints(reg: CFGRegistry) -> Dict[Key, str]:
    """Capture the registry's current body fingerprints."""
    out: Dict[Key, str] = {}
    for key in reg.keys():
        mir = reg.lookup(*key)
        if mir is not None:  # racing forget(): skip, don't crash
            out[key] = mir.fingerprint
    return out


def diff_registries(old: Dict[Key, str], reg: CFGRegistry) -> "RegistryDiff":
    """Compare a fingerprint snapshot against the registry's current state."""
    current = snapshot_fingerprints(reg)
    changed = {k for k, fp in current.items()
               if k in old and old[k] != fp}
    added = {k for k in current if k not in old}
    removed = {k for k in old if k not in current}
    return RegistryDiff(changed=changed, added=added, removed=removed)


class RegistryDiff:
    """The three change sets dev-mode invalidation needs."""

    def __init__(self, changed: Set[Key], added: Set[Key],
                 removed: Set[Key]) -> None:
        self.changed = changed
        self.added = added
        self.removed = removed

    def invalidation_roots(self) -> Set[Key]:
        """Methods whose cached checks (and dependents) must be dropped:
        changed bodies and removed methods.  Added methods are *not* roots —
        they are simply checked on first call (paper, Table 2 'Added')."""
        return self.changed | self.removed

    def __repr__(self) -> str:
        return (f"RegistryDiff(changed={sorted(self.changed)}, "
                f"added={sorted(self.added)}, removed={sorted(self.removed)})")
