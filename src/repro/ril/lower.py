"""Lower Python ``ast`` to the simplified method-body IR.

This is our analog of the DRuby front end: it "simplifies away many of the
tedious features" of the host language so the checker sees a small core:

* all operators, subscripts, and non-self attribute accesses become method
  calls with Ruby-flavored selectors (``+``, ``[]``, ``[]=``, ``name``,
  ``name=``);
* ``ClassName(...)`` construction becomes ``ClassName.new(...)``;
* lambdas and single-generator comprehensions become code blocks
  (``xs.map { ... }`` / ``xs.select { ... }``);
* ``x: "T" = e`` annotated assignments and ``cast(e, "T")`` calls become
  :class:`~repro.ril.ir.Cast` nodes (the paper's ``rdl_cast``);
* ``len``/``str``/``int``/``float``/``print`` map to ``length``/``to_s``/
  ``to_i``/``to_f``/``puts``.

Constructs outside the supported subset raise :class:`LoweringError` with a
source position.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple, Type, Union

from . import ir
from .ir import NOWHERE, Node, Pos


class LoweringError(ValueError):
    """Raised when a method body uses a construct the IR cannot express."""

    def __init__(self, message: str, pos: Pos = NOWHERE) -> None:
        super().__init__(f"{message} ({pos})")
        self.pos = pos


_BINOPS: Dict[Type[ast.AST], str] = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/",
    ast.FloorDiv: "/", ast.Mod: "%", ast.Pow: "**",
    ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
    ast.LShift: "<<", ast.RShift: ">>",
}

_CMPOPS: Dict[Type[ast.AST], str] = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}

_BUILTIN_CALLS = {
    "len": "length", "str": "to_s", "int": "to_i", "float": "to_f",
    "abs": "abs",
}


def _pos(node: ast.AST) -> Pos:
    return Pos(getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def lower_body(stmts: Sequence[ast.stmt]) -> Node:
    """Lower a statement list, dropping a leading docstring."""
    items = list(stmts)
    if (items and isinstance(items[0], ast.Expr)
            and isinstance(items[0].value, ast.Constant)
            and isinstance(items[0].value.value, str)):
        items = items[1:]
    return ir.seq(*[lower_stmt(s) for s in items])


def lower_function(fn: ast.FunctionDef) -> Node:
    """Lower a function definition's body."""
    return lower_body(fn.body)


# -- statements --------------------------------------------------------------


def lower_stmt(stmt: ast.stmt) -> Node:
    pos = _pos(stmt)
    if isinstance(stmt, ast.Expr):
        return lower_expr(stmt.value)
    if isinstance(stmt, ast.Return):
        value = lower_expr(stmt.value) if stmt.value is not None else None
        return ir.Return(value, pos)
    if isinstance(stmt, ast.Pass):
        return ir.NilLit(pos)
    if isinstance(stmt, ast.Break):
        return ir.Break(pos)
    if isinstance(stmt, ast.Continue):
        return ir.Next(pos)
    if isinstance(stmt, ast.Assign):
        return _lower_assign(stmt, pos)
    if isinstance(stmt, ast.AnnAssign):
        return _lower_ann_assign(stmt, pos)
    if isinstance(stmt, ast.AugAssign):
        return _lower_aug_assign(stmt, pos)
    if isinstance(stmt, ast.If):
        return ir.If(lower_expr(stmt.test), lower_body(stmt.body),
                     lower_body(stmt.orelse), pos)
    if isinstance(stmt, ast.While):
        if stmt.orelse:
            raise LoweringError("while/else is not supported", pos)
        return ir.While(lower_expr(stmt.test), lower_body(stmt.body), pos)
    if isinstance(stmt, ast.For):
        return _lower_for(stmt, pos)
    if isinstance(stmt, ast.Raise):
        value = lower_expr(stmt.exc) if stmt.exc is not None else None
        return ir.Raise(value, pos)
    if isinstance(stmt, ast.Try):
        return _lower_try(stmt, pos)
    if isinstance(stmt, ast.Assert):
        # An assertion evaluates its test; typing-wise that is all we need.
        return lower_expr(stmt.test)
    if isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Global,
                         ast.Nonlocal)):
        return ir.NilLit(pos)
    raise LoweringError(
        f"unsupported statement {type(stmt).__name__}", pos)


def _lower_assign(stmt: ast.Assign, pos: Pos) -> Node:
    if len(stmt.targets) != 1:
        raise LoweringError("chained assignment is not supported", pos)
    value = lower_expr(stmt.value)
    return _assign_to(stmt.targets[0], value, pos)


def _assign_to(target: ast.expr, value: Node, pos: Pos) -> Node:
    if isinstance(target, ast.Name):
        return ir.VarWrite(target.id, value, pos)
    if isinstance(target, ast.Attribute):
        if _is_self(target.value):
            return ir.IVarWrite(target.attr, value, pos)
        return ir.Call(lower_expr(target.value), f"{target.attr}=",
                       (value,), None, pos)
    if isinstance(target, ast.Subscript):
        recv = lower_expr(target.value)
        index = lower_expr(target.slice)
        return ir.Call(recv, "[]=", (index, value), None, pos)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for elt in target.elts:
            if not isinstance(elt, ast.Name):
                raise LoweringError(
                    "destructuring targets must be plain names", pos)
            names.append(elt.id)
        tmp = "$destructure"
        writes: List[Node] = [ir.VarWrite(tmp, value, pos)]
        for i, name in enumerate(names):
            writes.append(ir.VarWrite(
                name,
                ir.Call(ir.VarRead(tmp, pos), "[]", (ir.IntLit(i, pos),),
                        None, pos),
                pos))
        return ir.seq(*writes)
    raise LoweringError(
        f"unsupported assignment target {type(target).__name__}", pos)


def _lower_ann_assign(stmt: ast.AnnAssign, pos: Pos) -> Node:
    """``x: "Array<Integer>" = e`` declares a local's type via a cast."""
    if stmt.value is None:
        raise LoweringError("annotated declaration requires a value", pos)
    value = lower_expr(stmt.value)
    ann = stmt.annotation
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        value = ir.Cast(value, ann.value, pos)
    return _assign_to(stmt.target, value, pos)


def _lower_aug_assign(stmt: ast.AugAssign, pos: Pos) -> Node:
    op = _BINOPS.get(type(stmt.op))
    if op is None:
        raise LoweringError("unsupported augmented assignment operator", pos)
    target = stmt.target
    rhs = lower_expr(stmt.value)
    if isinstance(target, ast.Name):
        combined = ir.Call(ir.VarRead(target.id, pos), op, (rhs,), None, pos)
        return ir.VarWrite(target.id, combined, pos)
    if isinstance(target, ast.Attribute) and _is_self(target.value):
        combined = ir.Call(ir.IVarRead(target.attr, pos), op, (rhs,), None,
                           pos)
        return ir.IVarWrite(target.attr, combined, pos)
    if isinstance(target, ast.Subscript):
        recv = lower_expr(target.value)
        index = lower_expr(target.slice)
        current = ir.Call(recv, "[]", (index,), None, pos)
        combined = ir.Call(current, op, (rhs,), None, pos)
        return ir.Call(recv, "[]=", (index, combined), None, pos)
    raise LoweringError("unsupported augmented assignment target", pos)


def _lower_for(stmt: ast.For, pos: Pos) -> Node:
    if stmt.orelse:
        raise LoweringError("for/else is not supported", pos)
    iterable = lower_expr(stmt.iter)
    body = lower_body(stmt.body)
    target = stmt.target
    if isinstance(target, ast.Name):
        return ir.ForEach(target.id, iterable, body, pos)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for elt in target.elts:
            if not isinstance(elt, ast.Name):
                raise LoweringError("loop targets must be plain names", pos)
            names.append(elt.id)
        tmp = "$each"
        unpack: List[Node] = []
        for i, name in enumerate(names):
            unpack.append(ir.VarWrite(
                name,
                ir.Call(ir.VarRead(tmp, pos), "[]", (ir.IntLit(i, pos),),
                        None, pos),
                pos))
        return ir.ForEach(tmp, iterable, ir.seq(*unpack, body), pos)
    raise LoweringError("unsupported loop target", pos)


def _lower_try(stmt: ast.Try, pos: Pos) -> Node:
    handlers: List[ir.Handler] = []
    for h in stmt.handlers:
        class_name = None
        if h.type is not None:
            if not isinstance(h.type, ast.Name):
                raise LoweringError("handler class must be a plain name",
                                    _pos(h))
            class_name = h.type.id
        handlers.append(ir.Handler(class_name, h.name, lower_body(h.body),
                                   _pos(h)))
    orelse = lower_body(stmt.orelse) if stmt.orelse else None
    final = lower_body(stmt.finalbody) if stmt.finalbody else None
    return ir.Try(lower_body(stmt.body), tuple(handlers), orelse, final, pos)


# -- expressions -------------------------------------------------------------


def lower_expr(expr: ast.expr) -> Node:
    pos = _pos(expr)
    if isinstance(expr, ast.Constant):
        return _lower_constant(expr.value, pos)
    if isinstance(expr, ast.Name):
        if expr.id == "self":
            return ir.SelfRef(pos)
        if expr.id[0].isupper():
            return ir.ConstRead(expr.id, pos)
        return ir.VarRead(expr.id, pos)
    if isinstance(expr, ast.Attribute):
        if _is_self(expr.value):
            return ir.IVarRead(expr.attr, pos)
        return ir.Call(lower_expr(expr.value), expr.attr, (), None, pos)
    if isinstance(expr, ast.Call):
        return _lower_call(expr, pos)
    if isinstance(expr, ast.BinOp):
        op = _BINOPS.get(type(expr.op))
        if op is None:
            raise LoweringError("unsupported binary operator", pos)
        return ir.Call(lower_expr(expr.left), op,
                       (lower_expr(expr.right),), None, pos)
    if isinstance(expr, ast.UnaryOp):
        return _lower_unary(expr, pos)
    if isinstance(expr, ast.BoolOp):
        op = "and" if isinstance(expr.op, ast.And) else "or"
        return ir.BoolOp(op, tuple(lower_expr(v) for v in expr.values), pos)
    if isinstance(expr, ast.Compare):
        return _lower_compare(expr, pos)
    if isinstance(expr, ast.IfExp):
        return ir.If(lower_expr(expr.test), lower_expr(expr.body),
                     lower_expr(expr.orelse), pos)
    if isinstance(expr, (ast.List, ast.Tuple)):
        return ir.ArrayLit(tuple(lower_expr(e) for e in expr.elts), pos)
    if isinstance(expr, ast.Dict):
        pairs: List[Tuple[Node, Node]] = []
        for k, v in zip(expr.keys, expr.values):
            if k is None:
                raise LoweringError("dict unpacking is not supported", pos)
            pairs.append((lower_expr(k), lower_expr(v)))
        return ir.HashLit(tuple(pairs), pos)
    if isinstance(expr, ast.Subscript):
        return ir.Call(lower_expr(expr.value), "[]",
                       (lower_expr(expr.slice),), None, pos)
    if isinstance(expr, ast.JoinedStr):
        return _lower_fstring(expr, pos)
    if isinstance(expr, ast.Lambda):
        return _lower_block(expr.args, lower_expr(expr.body), pos)
    if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
        return _lower_comprehension(expr, pos)
    raise LoweringError(
        f"unsupported expression {type(expr).__name__}", pos)


def _lower_constant(value: object, pos: Pos) -> Node:
    if value is None:
        return ir.NilLit(pos)
    if isinstance(value, bool):
        return ir.BoolLit(value, pos)
    if isinstance(value, int):
        return ir.IntLit(value, pos)
    if isinstance(value, float):
        return ir.FloatLit(value, pos)
    if isinstance(value, str):
        return ir.StrLit(value, pos)
    raise LoweringError(f"unsupported constant {value!r}", pos)


def _lower_unary(expr: ast.UnaryOp, pos: Pos) -> Node:
    if isinstance(expr.op, ast.Not):
        return ir.Not(lower_expr(expr.operand), pos)
    if isinstance(expr.op, ast.USub):
        if isinstance(expr.operand, ast.Constant) and isinstance(
                expr.operand.value, (int, float)) and not isinstance(
                expr.operand.value, bool):
            return _lower_constant(-expr.operand.value, pos)
        return ir.Call(lower_expr(expr.operand), "-@", (), None, pos)
    if isinstance(expr.op, ast.UAdd):
        return lower_expr(expr.operand)
    raise LoweringError("unsupported unary operator", pos)


def _lower_compare(expr: ast.Compare, pos: Pos) -> Node:
    parts: List[Node] = []
    left = expr.left
    for op, right in zip(expr.ops, expr.comparators):
        parts.append(_lower_one_compare(left, op, right, pos))
        left = right
    if len(parts) == 1:
        return parts[0]
    return ir.BoolOp("and", tuple(parts), pos)


def _lower_one_compare(left: ast.expr, op: ast.cmpop, right: ast.expr,
                       pos: Pos) -> Node:
    if isinstance(op, (ast.Is, ast.IsNot)):
        if isinstance(right, ast.Constant) and right.value is None:
            test = ir.IsNil(lower_expr(left), pos)
        elif isinstance(left, ast.Constant) and left.value is None:
            test = ir.IsNil(lower_expr(right), pos)
        else:
            test = ir.Call(lower_expr(left), "equal?",
                           (lower_expr(right),), None, pos)
        return ir.Not(test, pos) if isinstance(op, ast.IsNot) else test
    if isinstance(op, ast.In):
        return ir.Call(lower_expr(right), "include?",
                       (lower_expr(left),), None, pos)
    if isinstance(op, ast.NotIn):
        return ir.Not(ir.Call(lower_expr(right), "include?",
                              (lower_expr(left),), None, pos), pos)
    name = _CMPOPS.get(type(op))
    if name is None:
        raise LoweringError("unsupported comparison operator", pos)
    return ir.Call(lower_expr(left), name, (lower_expr(right),), None, pos)


def _lower_fstring(expr: ast.JoinedStr, pos: Pos) -> Node:
    parts: List[object] = []
    for value in expr.values:
        if isinstance(value, ast.Constant):
            parts.append(value.value)
        elif isinstance(value, ast.FormattedValue):
            parts.append(lower_expr(value.value))
        else:
            raise LoweringError("unsupported f-string component", pos)
    return ir.StrFormat(tuple(parts), pos)


def _lower_block(args: ast.arguments, body: Node, pos: Pos) -> ir.BlockFn:
    if args.kwonlyargs or args.vararg or args.kwarg or args.defaults:
        raise LoweringError("code blocks take plain positional params", pos)
    return ir.BlockFn(tuple(a.arg for a in args.args), body, pos)


def _lower_comprehension(expr: Union[ast.ListComp, ast.GeneratorExp],
                         pos: Pos) -> Node:
    """``[f(x) for x in xs]`` becomes ``xs.map { |x| f(x) }``; a single
    ``if`` becomes a ``select`` before the ``map``."""
    if len(expr.generators) != 1:
        raise LoweringError("only single-generator comprehensions", pos)
    gen = expr.generators[0]
    if gen.is_async:
        raise LoweringError("async comprehensions are not supported", pos)
    if not isinstance(gen.target, ast.Name):
        raise LoweringError("comprehension target must be a plain name", pos)
    var = gen.target.id
    source = lower_expr(gen.iter)
    for cond in gen.ifs:
        source = ir.Call(source, "select", (),
                         ir.BlockFn((var,), lower_expr(cond), pos), pos)
    return ir.Call(source, "map", (),
                   ir.BlockFn((var,), lower_expr(expr.elt), pos), pos)


def _is_self(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id == "self"


def _lower_call(expr: ast.Call, pos: Pos) -> Node:
    func = expr.func
    # cast(e, "T") / hb.cast(e, "T") / e.rdl_cast("T")
    cast_call = _match_cast(expr, pos)
    if cast_call is not None:
        return cast_call
    if isinstance(func, ast.Name):
        name = func.id
        if name == "Sym" and len(expr.args) == 1 and isinstance(
                expr.args[0], ast.Constant) and isinstance(
                expr.args[0].value, str):
            return ir.SymLit(expr.args[0].value, pos)
        if name == "isinstance" and len(expr.args) == 2 and isinstance(
                expr.args[1], ast.Name):
            return ir.IsA(lower_expr(expr.args[0]), expr.args[1].id, pos)
        if name == "range":
            args = [lower_expr(a) for a in expr.args]
            if len(args) == 1:
                return ir.RangeLit(ir.IntLit(0, pos), args[0], pos)
            if len(args) == 2:
                return ir.RangeLit(args[0], args[1], pos)
            raise LoweringError("range() takes one or two arguments", pos)
        if name == "print":
            args, block = _lower_args(expr, pos)
            return ir.Call(None, "puts", args, block, pos)
        if name in _BUILTIN_CALLS and len(expr.args) == 1 and not \
                expr.keywords:
            return ir.Call(lower_expr(expr.args[0]), _BUILTIN_CALLS[name],
                           (), None, pos)
        if name[0].isupper():
            args, block = _lower_args(expr, pos)
            return ir.Call(ir.ConstRead(name, pos), "new", args, block, pos)
        args, block = _lower_args(expr, pos)
        return ir.Call(None, name, args, block, pos)
    if isinstance(func, ast.Attribute):
        recv = ir.SelfRef(_pos(func)) if _is_self(func.value) \
            else lower_expr(func.value)
        args, block = _lower_args(expr, pos)
        return ir.Call(recv, func.attr, args, block, pos)
    raise LoweringError("unsupported call target", pos)


def _match_cast(expr: ast.Call, pos: Pos) -> Optional[Node]:
    func = expr.func
    is_cast_name = (isinstance(func, ast.Name)
                    and func.id in ("cast", "rdl_cast"))
    is_hb_cast = (isinstance(func, ast.Attribute) and func.attr == "cast"
                  and isinstance(func.value, ast.Name)
                  and func.value.id in ("hb", "repro", "rdl"))
    if is_cast_name or is_hb_cast:
        if len(expr.args) != 2 or not isinstance(expr.args[1], ast.Constant):
            raise LoweringError(
                "cast requires a value and a literal type string", pos)
        return ir.Cast(lower_expr(expr.args[0]), expr.args[1].value, pos)
    if (isinstance(func, ast.Attribute) and func.attr == "rdl_cast"
            and len(expr.args) == 1
            and isinstance(expr.args[0], ast.Constant)):
        return ir.Cast(lower_expr(func.value), expr.args[0].value, pos)
    return None


def _lower_args(expr: ast.Call, pos: Pos
                ) -> Tuple[Tuple[Node, ...], Optional[ir.BlockFn]]:
    """Positional args lower directly; keyword args become a trailing
    hash argument (Ruby options-hash convention); a trailing lambda becomes
    the code block."""
    args: List[Node] = []
    block: Optional[ir.BlockFn] = None
    for a in expr.args:
        if isinstance(a, ast.Starred):
            raise LoweringError("argument splat is not supported", pos)
        args.append(lower_expr(a))
    if args:
        last = args[-1]
        if isinstance(last, ir.BlockFn):
            block = last  # trailing lambda is the code block
            args.pop()
    kw_pairs: List[Tuple[ir.SymLit, Node]] = []
    for kw in expr.keywords:
        if kw.arg is None:
            raise LoweringError("keyword splat is not supported", pos)
        if kw.arg == "block" and isinstance(expr_kw := lower_expr(kw.value),
                                            ir.BlockFn):
            block = expr_kw
            continue
        kw_pairs.append((ir.SymLit(kw.arg, pos), lower_expr(kw.value)))
    if kw_pairs:
        args.append(ir.HashLit(tuple(kw_pairs), pos))
    return tuple(args), block
