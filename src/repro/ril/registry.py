"""The method-IR registry: (class name, method name) -> lowered body.

The paper's pipeline parses each application file with DRuby, emits JSON
CFGs, and at run time keeps "a mapping from class and method names and
positions to the JSON CFG", consulted whenever a wrapped method must be
statically checked.  This module is that mapping for the Python host:

* :meth:`CFGRegistry.register_function` lowers a live function object by
  reading its source (``inspect``), or an explicit ``__hb_source__``
  attribute for methods created from strings (the dev-mode reloader and
  metaprogramming substrates attach one);
* closure-captured variables are typed from the closure cells at
  registration time — run-time information feeding the static check, in
  the spirit of the whole system;
* :meth:`CFGRegistry.lookup` walks nothing: module methods mixed into many
  classes are registered per *including* class by the engine, matching the
  paper's per-mixin caching strategy.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .ir import Node
from .json_io import fingerprint
from .lower import LoweringError, lower_function


@dataclass(frozen=True)
class ParamSpec:
    """A formal parameter of a registered method."""

    name: str
    optional: bool = False  # has a default value
    vararg: bool = False    # *args


@dataclass(frozen=True)
class MethodIR:
    """A lowered method body plus everything the checker needs."""

    owner: str
    name: str
    params: Tuple[ParamSpec, ...]
    body: Node
    source_file: str = "<unknown>"
    source_line: int = 0
    captures: Mapping[str, object] = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.body)

    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)


class RegistrationError(ValueError):
    """Raised when a function's source cannot be found or lowered."""


class CFGRegistry:
    """Maps (class, method) to :class:`MethodIR`."""

    def __init__(self) -> None:
        self._methods: Dict[Tuple[str, str], MethodIR] = {}

    def register_function(self, owner: str, name: str, fn: Any,
                          captures: Optional[Mapping[str, object]] = None
                          ) -> MethodIR:
        """Lower ``fn`` and register it under ``owner#name``.

        ``fn`` may be a plain function, a closure produced by
        metaprogramming (free variables are typed from the closure cells),
        or a function with an ``__hb_source__`` attribute carrying its
        source text (for methods created via ``exec``).
        """
        fn = inspect.unwrap(getattr(fn, "__func__", fn))
        source = getattr(fn, "__hb_source__", None)
        if source is None:
            try:
                source = inspect.getsource(fn)
            except (OSError, TypeError) as exc:
                raise RegistrationError(
                    f"no source available for {owner}#{name}: {exc}"
                ) from None
        mir = self._lower_source(owner, name, source,
                                 source_file=_source_file(fn),
                                 source_line=_source_line(fn),
                                 captures=captures or _closure_captures(fn))
        self._methods[(owner, name)] = mir
        return mir

    def register_source(self, owner: str, name: str, source: str,
                        captures: Optional[Mapping[str, object]] = None,
                        source_file: str = "<string>") -> MethodIR:
        """Lower and register a method from raw source text."""
        mir = self._lower_source(owner, name, source,
                                 source_file=source_file, source_line=0,
                                 captures=captures or {})
        self._methods[(owner, name)] = mir
        return mir

    def register_ir(self, mir: MethodIR) -> MethodIR:
        """Register an already-lowered method (e.g. loaded from JSON)."""
        self._methods[(mir.owner, mir.name)] = mir
        return mir

    def _lower_source(self, owner: str, name: str, source: str, *,
                      source_file: str, source_line: int,
                      captures: Mapping[str, object]) -> MethodIR:
        tree = _parse_def(source)
        try:
            body = lower_function(tree)
        except LoweringError as exc:
            raise RegistrationError(
                f"cannot lower {owner}#{name}: {exc}") from exc
        return MethodIR(owner=owner, name=name, params=_params_of(tree),
                        body=body, source_file=source_file,
                        source_line=source_line, captures=dict(captures))

    # -- queries ------------------------------------------------------------

    def lookup(self, owner: str, name: str) -> Optional[MethodIR]:
        return self._methods.get((owner, name))

    def forget(self, owner: str, name: str) -> None:
        self._methods.pop((owner, name), None)

    def methods_of(self, owner: str) -> Tuple[MethodIR, ...]:
        return tuple(m for (o, _), m in self._methods.items() if o == owner)

    def keys(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(self._methods)

    def __len__(self) -> int:
        return len(self._methods)


def _parse_def(source: str) -> ast.FunctionDef:
    """Parse source text and return its first function definition."""
    text = textwrap.dedent(source)
    try:
        module = ast.parse(text)
    except SyntaxError as exc:
        raise RegistrationError(f"cannot parse method source: {exc}") from exc
    for node in ast.walk(module):
        if isinstance(node, ast.FunctionDef):
            return node
    raise RegistrationError("source contains no function definition")


def _params_of(fn: ast.FunctionDef) -> Tuple[ParamSpec, ...]:
    args = fn.args
    specs: List[ParamSpec] = []
    positional = list(args.posonlyargs) + list(args.args)
    n_defaults = len(args.defaults)
    for i, a in enumerate(positional):
        if i == 0 and a.arg in ("self", "cls"):
            continue
        optional = i >= len(positional) - n_defaults
        specs.append(ParamSpec(a.arg, optional=optional))
    if args.vararg is not None:
        specs.append(ParamSpec(args.vararg.arg, vararg=True))
    return tuple(specs)


def _closure_captures(fn: Any) -> Dict[str, object]:
    """Type the function's closure cells at registration time.

    When metaprogramming generates a method as a closure (Fig. 2's
    ``define_dynamic_method``), its free variables (``role_name``) are bound
    by the factory; we record their run-time types so the static check of
    the body has types for them.
    """
    from ..rtypes import type_of

    freevars = getattr(fn.__code__, "co_freevars", ())
    cells = getattr(fn, "__closure__", None) or ()
    out: Dict[str, object] = {}
    for name, cell in zip(freevars, cells):
        try:
            out[name] = type_of(cell.cell_contents)
        except ValueError:  # empty cell
            continue
    return out


def _source_file(fn: Any) -> str:
    try:
        return inspect.getfile(fn)
    except TypeError:
        return "<unknown>"


def _source_line(fn: Any) -> int:
    try:
        return fn.__code__.co_firstlineno
    except AttributeError:
        return 0
