"""IR ⇄ JSON serialization.

The paper modified DRuby to emit each file's RIL CFG as JSON, loaded at run
time by the Ruby side.  We mirror that pipeline: any IR tree serializes to
plain JSON-compatible data and back.  Fingerprints for the dev-mode diff are
computed over the *position-free* serialization, so shifting a method down a
file does not count as changing its body.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields
from typing import Any, Dict, Type

from . import ir
from .ir import Node, Pos

_NODE_CLASSES: Dict[str, Type[Node]] = {
    cls.__name__: cls
    for cls in vars(ir).values()
    if isinstance(cls, type) and issubclass(cls, Node) and cls is not Node
}


def to_json(node: Node, *, include_pos: bool = True) -> Dict[str, Any]:
    """Serialize an IR node to JSON-compatible data."""
    out: Dict[str, Any] = {"kind": type(node).__name__}
    for f in fields(node):
        value = getattr(node, f.name)
        if f.name == "pos":
            if include_pos:
                out["pos"] = [value.line, value.col]
            continue
        out[f.name] = _encode(value, include_pos)
    return out


def _encode(value: Any, include_pos: bool) -> Any:
    if isinstance(value, Node):
        return to_json(value, include_pos=include_pos)
    if isinstance(value, tuple):
        return [_encode(v, include_pos) for v in value]
    return value


def from_json(data: Dict[str, Any]) -> Node:
    """Deserialize JSON data produced by :func:`to_json`."""
    kind = data["kind"]
    cls = _NODE_CLASSES.get(kind)
    if cls is None:
        raise ValueError(f"unknown IR node kind {kind!r}")
    kwargs: Dict[str, Any] = {}
    for f in fields(cls):
        if f.name == "pos":
            raw = data.get("pos")
            kwargs["pos"] = Pos(*raw) if raw else ir.NOWHERE
            continue
        kwargs[f.name] = _decode(data.get(f.name))
    return cls(**kwargs)


def _decode(value: Any) -> Any:
    if isinstance(value, dict) and "kind" in value:
        return from_json(value)
    if isinstance(value, list):
        return tuple(_decode(v) for v in value)
    return value


def dumps(node: Node, *, include_pos: bool = True) -> str:
    """Serialize to a JSON string (stable key order for fingerprints)."""
    return json.dumps(to_json(node, include_pos=include_pos), sort_keys=True)


def loads(text: str) -> Node:
    return from_json(json.loads(text))


def fingerprint(node: Node) -> str:
    """A stable digest of the node's position-free structure.

    Dev-mode reloading compares old and new method bodies with this (paper
    section 4: "if there is a difference between its new and old method
    body (which we check using the RIL CFGs), we invalidate the method").
    """
    payload = dumps(node, include_pos=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
