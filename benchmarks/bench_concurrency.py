"""Concurrency benchmarks: the multi-threaded request workload.

The tentpole claim: the engine's warm path takes no global lock, so N
request threads sharing one engine scale aggregate throughput with N
whenever per-request I/O dominates — and a dev-mode reload churning the
type table mid-flight neither corrupts a cache nor collapses the warm
hit rate.

Two ways to run:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_concurrency.py -q``
  — asserts the >= 3x aggregate-throughput scaling at 8 threads versus
  1 thread on the warm path, identical outcome multisets between the
  concurrent run and a single-threaded oracle (with and without
  churn), and a still-warm hit rate under churn;
* ``PYTHONPATH=src python benchmarks/bench_concurrency.py [--smoke]``
  — prints a JSON report (the committed ``BENCH_concurrency.json``
  baseline format) for perf-trajectory tracking across PRs.

``IO_WAIT_S`` models the off-CPU time (database, network, template
writes) a real Rails request spends per hit; ``time.sleep`` releases
the GIL, so it is exactly the window in which other request threads
make progress.  The interpreter-bound portion stays serialized by the
GIL — the point of the measurement is that the *engine* adds no lock
that would serialize the I/O window too.
"""

import json
import os
import sys

from repro.concurrency import (
    ConcurrentDriver, build_concurrent_world, churn_recipe, request_thunks,
)

#: per-request simulated I/O window; chosen so the pubs request mix is
#: I/O-dominated (CPU per request is ~a third of this on a dev box).
IO_WAIT_S = 0.004
#: total requests per measured configuration.
REQUESTS = 480
#: thread counts compared for the scaling headline.
THREADS_LOW, THREADS_HIGH = 1, 8


def _warm(thunks, rounds: int = 2) -> None:
    """Drive every request once (twice) so annotations have executed,
    bodies are checked, and call plans are built before timing."""
    for _ in range(rounds):
        for thunk in thunks:
            thunk()


def measure_scaling(requests: int = REQUESTS,
                    io_wait_s: float = IO_WAIT_S) -> dict:
    """Aggregate warm-path throughput at 1 vs 8 threads, same schedule."""
    world = build_concurrent_world("pubs")
    thunks = request_thunks(world)
    _warm(thunks)
    runs = {}
    for threads in (THREADS_LOW, THREADS_HIGH):
        driver = ConcurrentDriver(thunks, threads=threads,
                                  requests=requests, io_wait_s=io_wait_s,
                                  record_outcomes=False)
        run = driver.run()
        # A crashed/hung worker would shrink elapsed time while its
        # requests went unserved — never let that inflate the headline.
        assert not run.crashes, run.crashes
        assert run.completed == requests, (run.completed, requests)
        runs[threads] = run
    low, high = runs[THREADS_LOW], runs[THREADS_HIGH]
    stats = world.engine.stats
    return {
        "requests": requests,
        "io_wait_ms": round(io_wait_s * 1000, 3),
        "threads_low": THREADS_LOW,
        "threads_high": THREADS_HIGH,
        "rps_1": round(low.throughput_rps, 1),
        f"rps_{THREADS_HIGH}": round(high.throughput_rps, 1),
        "scaling": round(high.throughput_rps / low.throughput_rps, 2),
        "warm_hit_rate": round(
            stats.fast_path_hits / max(1, stats.calls_intercepted), 4),
    }


def measure_churn(threads: int = THREADS_HIGH,
                  requests: int = REQUESTS,
                  churn_interval_s: float = 0.005) -> dict:
    """8 request threads + a dev-mode reload churn thread retyping a hot
    method every few milliseconds: outcomes must match the no-churn
    oracle (semantics-preserving churn), nothing may crash, and most
    calls must still ride warm plans between invalidation waves."""
    world = build_concurrent_world("pubs")
    thunks = request_thunks(world)
    _warm(thunks)
    stats = world.engine.stats
    hits0, calls0 = stats.fast_path_hits, stats.calls_intercepted
    invalidations0 = stats.plan_invalidations
    driver = ConcurrentDriver(thunks, threads=threads, requests=requests,
                              io_wait_s=IO_WAIT_S,
                              churn=churn_recipe(world),
                              churn_interval_s=churn_interval_s)
    run = driver.run()
    # Snapshot the deltas *before* the oracle replay: its fully-warm
    # requests hit the same engine and would dilute the churn-period
    # miss rate into a vacuously high number.
    hits_delta = stats.fast_path_hits - hits0
    calls = stats.calls_intercepted - calls0
    oracle = driver.run_single_threaded_oracle()
    return {
        "threads": threads,
        "requests": requests,
        "churn_applied": run.churn_applied,
        "plans_invalidated": stats.plan_invalidations - invalidations0,
        "errors": len(run.error_outcomes),
        "crashes": list(run.crashes),
        "outcomes_match_oracle":
            run.outcome_multiset() == oracle.outcome_multiset(),
        "warm_hit_rate_under_churn": round(hits_delta / max(1, calls), 4),
    }


def measure(requests: int = REQUESTS) -> dict:
    return {
        "scaling": measure_scaling(requests),
        "churn": measure_churn(requests=requests),
    }


# -- pytest entry points -----------------------------------------------------


def test_concurrent_scaling_at_least_3x():
    """Acceptance criterion: >= 3x aggregate throughput at 8 threads vs
    1 thread on the warm path.

    Shared CI runners are noisy and core-starved; CI exports
    CONCURRENCY_MIN_SCALING=2 as its alarm threshold while local runs
    enforce the full 3x.
    """
    floor = float(os.environ.get("CONCURRENCY_MIN_SCALING", "3.0"))
    result = measure_scaling()
    assert result["scaling"] >= floor, result
    assert result["warm_hit_rate"] > 0.9, result


def test_concurrent_outcomes_match_single_thread_oracle():
    """Threaded differential soundness, benchmark-sized: the concurrent
    run's outcome multiset equals a single-threaded oracle replay."""
    world = build_concurrent_world("pubs")
    thunks = request_thunks(world)
    _warm(thunks)
    driver = ConcurrentDriver(thunks, threads=THREADS_HIGH, requests=160)
    run = driver.run()
    oracle = driver.run_single_threaded_oracle()
    assert not run.crashes, run.crashes
    assert run.outcome_multiset() == oracle.outcome_multiset()


def test_churn_under_load_is_sound_and_stays_warm():
    """Dev-mode reload churn against live traffic: no crashes, no
    divergent outcomes, and the warm hit rate survives (the whole point
    of per-key invalidation — one retyped method must not cold-start
    the world on every wave)."""
    result = measure_churn(requests=240)
    assert not result["crashes"], result
    assert result["errors"] == 0, result
    assert result["outcomes_match_oracle"], result
    assert result["churn_applied"] > 0, result
    assert result["warm_hit_rate_under_churn"] > 0.5, result


# -- baseline script ---------------------------------------------------------


def main(argv) -> int:
    requests = 160 if "--smoke" in argv else REQUESTS
    result = measure(requests)
    print(json.dumps(result, indent=2))
    scaling = result["scaling"]["scaling"]
    floor = 2.0 if "--smoke" in argv else 3.0
    ok = (scaling >= floor
          and result["churn"]["outcomes_match_oracle"]
          and not result["churn"]["crashes"])
    if not ok:
        print(f"FAIL: scaling {scaling} < {floor}x or churn unsound",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
