"""Hot-path microbenchmarks: the steady-state intercepted-call fast path.

The tentpole claim: once a call site is warm, the JIT protocol collapses to
a guard + dict hit (call plan) instead of signature resolution + jit_check
+ mode dispatch, and the supporting caches (interned types, memoized
subtyping, class-name memo) keep the remaining dynamic work flat.  PR 4
adds tier 2 on top: hot plans compile into per-site specialized wrappers
(``repro.core.specialize``), so the default-engine ``fast_*`` figures now
measure the tiered engine and the ``tier2`` block isolates specialization
against a plans-only (``specialize=False``) engine.  PR 6 adds tier 3:
promotion-time RIL dataflow proves checks redundant and the wrapper
omits them, so the ``tier3`` block isolates elision against an
otherwise-identical ``elide=False`` engine.  PR 10 widens tier 3
(multi-profile pinning, inter-procedural returns, join precision,
name-level contract gating) and adds the ``serving_elision`` block: the
deterministic provability-audit rate on warm serving apps.

Two ways to run:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py -q`` —
  asserts the >= 3x steady-state speedup versus the legacy (pre-plan)
  call path and that warm app workloads actually take the fast path;
* ``PYTHONPATH=src python benchmarks/bench_hotpath.py [--smoke]`` —
  prints a JSON report (the committed ``BENCH_hotpath.json`` baseline
  format) for perf-trajectory tracking across PRs.

The "legacy" engine below reproduces the pre-plan hot path faithfully:
call plans off *and* the per-hierarchy subtype memo off, so every call
re-resolves and every dynamic check re-walks the subtype relation.
"""

import json
import os
import sys
import time

from repro import Engine, EngineConfig
from repro.apps import all_builders
from repro.evalharness.table1 import engine_for

#: calls per timed loop (pytest asserts use the full size; --smoke shrinks).
CALLS = 100_000


def fast_engine() -> Engine:
    """The default engine: tier-1 call plans + tier-2 specialization."""
    return Engine()


def tier1_engine() -> Engine:
    """Call plans only — the pre-specialization (PR 1-3) fast path."""
    return Engine(EngineConfig(specialize=False))


def tier2_engine() -> Engine:
    """Specialized wrappers with tier-3 elision off — the PR 4/5 path."""
    return Engine(EngineConfig(elide=False))


def legacy_engine() -> Engine:
    engine = Engine(EngineConfig(call_plans=False, specialize=False))
    engine.hier.subtype_cache.enabled = False
    return engine


def _build_hot_class(engine):
    hb = engine.api()

    class HotCounter:
        @hb.typed("(Integer) -> Integer")
        def bump(self, n):
            return n + 1

    return HotCounter()


def steady_state_seconds(engine, calls: int = CALLS) -> float:
    """Time ``calls`` warm intercepted calls on one typed method."""
    counter = _build_hot_class(engine)
    counter.bump(0)  # warm: static check runs, plan (if any) is built
    for i in range(120):
        counter.bump(i)  # cross the tier-2 promotion threshold first
    start = time.perf_counter()
    for i in range(calls):
        counter.bump(i)
    return time.perf_counter() - start


# -- polymorphic (2-entry) workload ------------------------------------------


def _build_poly_world(engine):
    """A typed method on a base class, hot under two subclasses — the
    shape PR 4's monomorphic guard handed to whichever class got hot
    first, and PR 5's 2-entry dispatch serves for both."""
    hb = engine.api()

    class PolyHotBase:
        @hb.typed("(Integer) -> Integer")
        def bump(self, n):
            return n + 1

    class PolyHotA(PolyHotBase):
        pass

    class PolyHotB(PolyHotBase):
        pass

    engine.register_class(PolyHotA)
    engine.register_class(PolyHotB)
    return PolyHotA(), PolyHotB()


def poly_steady_state_seconds(engine, calls: int = CALLS) -> float:
    """Time ``calls`` warm calls alternating between two hot receiver
    classes of the same defining method."""
    a, b = _build_poly_world(engine)
    for i in range(120):  # both receivers past the promotion threshold
        a.bump(i)
        b.bump(i)
    pairs = calls // 2
    start = time.perf_counter()
    for i in range(pairs):
        a.bump(i)
        b.bump(i)
    return time.perf_counter() - start


def measure_poly(calls: int = CALLS) -> dict:
    """Two hot receiver classes: the tiered engine compiles a 2-entry
    dispatch; the plans-only engine is the generic tier-1 comparison."""
    fast = fast_engine()
    fast_s = poly_steady_state_seconds(fast, calls)
    tier1_s = poly_steady_state_seconds(tier1_engine(), calls)
    stats = fast.stats
    return {
        "calls": 2 * (calls // 2),
        "fast_s": round(fast_s, 4),
        "tier1_s": round(tier1_s, 4),
        "fast_calls_per_sec": round(2 * (calls // 2) / fast_s),
        "speedup_vs_tier1": round(tier1_s / fast_s, 2),
        "promotions": stats.promotions,
        "poly_promotions": stats.poly_promotions,
        "specialized_hits": stats.specialized_hits,
        "specialized_hit_ratio": round(
            stats.specialized_hits / stats.fast_path_hits, 4),
        "poly_spec_hits": stats.poly_spec_hits,
    }


# -- kwargs workload ---------------------------------------------------------


def _build_kwargs_world(engine):
    hb = engine.api()

    class KwHot:
        @hb.typed("(Integer, Integer) -> Integer")
        def combine(self, x, y):
            return x + y

    return KwHot()


def kwargs_steady_state_seconds(engine, calls: int = CALLS) -> float:
    """Time ``calls`` warm keyword-bearing calls on one typed method."""
    obj = _build_kwargs_world(engine)
    for i in range(120):  # learn the layout, cross the threshold
        obj.combine(i, y=2)
    start = time.perf_counter()
    for i in range(calls):
        obj.combine(i, y=2)
    return time.perf_counter() - start


def measure_kwargs(calls: int = CALLS) -> dict:
    """A stable-kwargs call site: the tiered engine compiles the
    positional reorder in; the plans-only engine rides the engine-side
    layout fast path."""
    fast = fast_engine()
    fast_s = kwargs_steady_state_seconds(fast, calls)
    tier1_s = kwargs_steady_state_seconds(tier1_engine(), calls)
    stats = fast.stats
    return {
        "calls": calls,
        "fast_s": round(fast_s, 4),
        "tier1_s": round(tier1_s, 4),
        "fast_calls_per_sec": round(calls / fast_s),
        "speedup_vs_tier1": round(tier1_s / fast_s, 2),
        "promotions": stats.promotions,
        "kw_promotions": stats.kw_promotions,
        "kw_spec_hits": stats.kw_spec_hits,
        "kw_spec_hit_ratio": round(
            stats.kw_spec_hits / stats.calls_intercepted, 4),
    }


def measure_tier3(calls: int = CALLS) -> dict:
    """The same hot leaf, default engine versus an ``elide=False`` twin.

    Both sides promote to a tier-2 wrapper; the only difference is the
    tier-3 analysis statically discharging the per-call check ops (cache
    guard, arity/type tests, frame push/pop), so the ratio isolates what
    elision alone buys.  The delta is a handful of dict probes per call
    — real but small — so this measurement is hardened against scheduler
    noise: the loop never shrinks below 50k calls (even in --smoke) and
    each side reports its best of three runs, each on a fresh engine (a
    re-built hot class on a warm engine shares the first build's site
    and would sample a fallback path instead of the elided wrapper)."""
    calls = max(calls, 50_000)
    fast = fast_engine()
    fast_s = min(steady_state_seconds(fast_engine() if i else fast, calls)
                 for i in range(3))
    tier2_s = min(steady_state_seconds(tier2_engine(), calls)
                  for _ in range(3))
    stats = fast.stats
    return {
        "calls": calls,
        "fast_s": round(fast_s, 4),
        "tier2_s": round(tier2_s, 4),
        "calls_per_sec": round(calls / fast_s),
        "speedup_vs_tier2": round(tier2_s / fast_s, 2),
        "checks_elided": stats.checks_elided,
        "elide_promotions": stats.elide_promotions,
    }


# -- app-workload elision rate (provability audit) ---------------------------

#: serving app/mix pairs whose warm-site elision rate the baseline tracks.
ELISION_MIXES = (
    ("boxroom", "read"),
    ("boxroom", "mixed"),
    ("countries", "read"),
    ("countries", "mixed"),
    ("rolify", "read"),
    ("rolify", "mixed"),
)


def measure_serving_elision() -> dict:
    """Provable check-elimination rate on warm serving apps.

    For each app/mix pair, warm an engine by replaying the serving
    scenario and run the tier-3 provability audit
    (``repro.ril.audit``): the rate is check ops proved redundant
    (seed-free or profile-pinned) over check ops that actually run at
    warm sites.  Unlike the timing loops this is deterministic — it
    measures what the analysis *proves*, not scheduler noise.

    Reference points (pre multi-profile/inter-procedural analysis):
    boxroom read 0.619, countries mixed 0.62, rolify 0.0 — rolify was
    zero because any active contract deoptimized the whole engine; the
    name-level contract gate plus the deeper analysis is what the
    committed rates measure.
    """
    from repro.ril.audit import audit_engine, warm_serving_engine

    out = {}
    for app, mix in ELISION_MIXES:
        engine = warm_serving_engine(app, mix)
        summary = audit_engine(engine)["summary"]
        out[f"{app}_{mix}"] = {
            "rate": summary["elision_rate"],
            "proved": summary["proved"],
            "applicable": summary["applicable"],
            "sites": summary["sites"],
        }
    return out


def measure(calls: int = CALLS) -> dict:
    """The committed-baseline measurement: tiered vs tier-1 vs legacy.

    ``fast_*`` is the *default* engine — tier-2 specialization included
    — so the headline ``fast_calls_per_sec`` tracks what a real
    deployment gets.  The ``tier2`` block isolates the specializer's
    contribution against a plans-only engine.
    """
    fast = fast_engine()
    fast_s = steady_state_seconds(fast, calls)
    tier1 = tier1_engine()
    tier1_s = steady_state_seconds(tier1, calls)
    legacy_s = steady_state_seconds(legacy_engine(), calls)
    fast_stats = fast.stats
    return {
        "calls": calls,
        "fast_s": round(fast_s, 4),
        "tier1_s": round(tier1_s, 4),
        "legacy_s": round(legacy_s, 4),
        "fast_calls_per_sec": round(calls / fast_s),
        "tier1_calls_per_sec": round(calls / tier1_s),
        "legacy_calls_per_sec": round(calls / legacy_s),
        "speedup": round(legacy_s / fast_s, 2),
        "fast_path_hits": fast_stats.fast_path_hits,
        "tier2": {
            "speedup_vs_tier1": round(tier1_s / fast_s, 2),
            "promotions": fast_stats.promotions,
            "deopts": fast_stats.deopts,
            "specialized_hits": fast_stats.specialized_hits,
            "specialized_hit_ratio": round(
                fast_stats.specialized_hits / fast_stats.fast_path_hits, 4),
        },
        "tier3": measure_tier3(calls),
        "poly": measure_poly(calls),
        "kwargs": measure_kwargs(calls),
        "reload": measure_reload(),
        "serving_elision": measure_serving_elision(),
    }


# -- dev-mode reload scenario -------------------------------------------------

#: warm methods in the simulated dev-mode app and calls per method in the
#: post-churn measurement sweep.
RELOAD_METHODS = 24
RELOAD_CALLS_PER_METHOD = 5


def _build_reload_world(engine, methods: int = RELOAD_METHODS):
    """A class with ``methods`` statically-checked typed methods, defined
    the dev-mode way (run-time define_method with IR sources)."""
    cls = type("DevReload", (object,), {})
    engine.register_class(cls)
    for i in range(methods):
        name = f"m{i}"
        source = f"def {name}(self, n):\n    return n + {i}\n"
        namespace = {}
        exec(source, namespace)  # noqa: S102 - benchmark-local template
        fn = namespace[name]
        fn.__hb_source__ = source
        engine.define_method(cls, name, fn, sig="(Integer) -> Integer",
                             check=True, source=source)
    return cls()


def measure_reload(methods: int = RELOAD_METHODS,
                   calls_per_method: int = RELOAD_CALLS_PER_METHOD) -> dict:
    """Dev-mode reload churn: retype ONE method (plus the other noise a
    file reload makes — a fresh class registration and a re-executed
    field_type), then measure how much of the next request is still
    served by warm call plans.

    Under the old coarse version guards the retype alone killed every
    plan (warm hit rate 0 on the next sweep); with dependency-tracked
    invalidation only the churned method rebuilds.
    """
    engine = fast_engine()
    obj = _build_reload_world(engine, methods)
    for _ in range(2):  # warm every call site
        for i in range(methods):
            getattr(obj, f"m{i}")(1)
    stats = engine.stats
    invalidations_before = stats.plan_invalidations
    # the "reload": re-execute one method's (changed) annotation, define a
    # new class, and re-run an identical field_type
    engine.types.replace("DevReload", "m0", "(Integer) -> Integer",
                         check=True)
    engine.register_class(type("ReloadFreshClass", (object,), {}))
    engine.field_type("DevReload", "scratch", "Integer")
    engine.field_type("DevReload", "scratch", "Integer")  # identical re-add
    hits0, calls0 = stats.fast_path_hits, stats.calls_intercepted
    for _ in range(calls_per_method):
        for i in range(methods):
            getattr(obj, f"m{i}")(1)
    calls = stats.calls_intercepted - calls0
    rate = (stats.fast_path_hits - hits0) / calls
    return {
        "methods": methods,
        "calls_after_churn": calls,
        "plans_invalidated_by_churn":
            stats.plan_invalidations - invalidations_before,
        "warm_hit_rate": round(rate, 4),
    }


# -- pytest entry points -----------------------------------------------------

#: measure() is three 100k-call timing loops plus the reload sweep; the
#: pytest assertions below all judge one measurement, so share it.
_MEASURED = None


def _measured() -> dict:
    global _MEASURED
    if _MEASURED is None:
        _MEASURED = measure()
    return _MEASURED


def test_steady_state_speedup_at_least_3x():
    """Acceptance criterion: >= 3x on the warm intercepted-call loop.

    Shared CI runners are noisy; CI exports HOTPATH_MIN_SPEEDUP=2 as its
    alarm threshold while local runs enforce the full 3x.
    """
    floor = float(os.environ.get("HOTPATH_MIN_SPEEDUP", "3.0"))
    result = _measured()
    assert result["fast_path_hits"] >= result["calls"]
    assert result["speedup"] >= floor, result


def test_tier2_beats_tier1():
    """PR 4 acceptance: the specialized wrapper beats the generic plan
    path on the same loop (locally >= 1.5x; CI alarms at 1.2x via
    HOTPATH_MIN_TIER2 because shared runners are noisy), and promotion
    actually happened with the steady state riding specialized code.
    """
    floor = float(os.environ.get("HOTPATH_MIN_TIER2", "1.5"))
    result = _measured()
    tier2 = result["tier2"]
    assert tier2["promotions"] >= 1, result
    assert tier2["specialized_hit_ratio"] > 0.99, result
    assert tier2["speedup_vs_tier1"] >= floor, result


def test_tier3_elision_beats_tier2():
    """PR 6 acceptance: tier-3 analysis proves the hot leaf's checks
    redundant (promotion carries an elision, checks actually elide at
    run time) and the stripped wrapper beats an elide-off engine on the
    same loop.  The speedup gate is strictly > 1.0 — elision must never
    cost — with CI able to relax via HOTPATH_MIN_TIER3 if shared-runner
    noise ever flakes it."""
    floor = float(os.environ.get("HOTPATH_MIN_TIER3", "1.0"))
    tier3 = _measured()["tier3"]
    assert tier3["elide_promotions"] >= 1, tier3
    assert tier3["checks_elided"] > 0, tier3
    assert tier3["speedup_vs_tier2"] > floor, tier3


def test_poly_site_promotes_and_beats_tier1():
    """PR 5 acceptance: two hot receiver classes build a 2-entry
    dispatch (not one monomorphic winner plus a permanent generic
    loser), the alternating-receiver loop rides it, and it is >= 1.5x
    the generic tier-1 path (CI alarms at 1.2x via HOTPATH_MIN_TIER2).
    """
    floor = float(os.environ.get("HOTPATH_MIN_TIER2", "1.5"))
    poly = _measured()["poly"]
    assert poly["poly_promotions"] >= 1, poly
    assert poly["specialized_hit_ratio"] > 0.99, poly
    assert poly["poly_spec_hits"] > 0, poly
    assert poly["speedup_vs_tier1"] >= floor, poly


def test_kwargs_site_promotes_and_beats_tier1():
    """PR 5 acceptance: a stable-kwargs site compiles its layout in,
    the keyword loop rides the straight-line reorder, and it is >= 1.5x
    the generic tier-1 path (CI alarms at 1.2x via HOTPATH_MIN_TIER2).
    """
    floor = float(os.environ.get("HOTPATH_MIN_TIER2", "1.5"))
    kwargs = _measured()["kwargs"]
    assert kwargs["kw_promotions"] >= 1, kwargs
    assert kwargs["kw_spec_hit_ratio"] > 0.99, kwargs
    assert kwargs["speedup_vs_tier1"] >= floor, kwargs


def test_app_workload_elision_rates():
    """PR 10 acceptance: the provability audit's elision rate on warm
    serving apps.  Deterministic (no timing), so the floors are tight:
    rolify must be solidly above its pre-name-level-contract-gate rate
    of 0.0 — the >= 1.5x-improvement criterion rides on that mix — and
    the read-heavy app mixes must hold the ~0.6 the analysis proves
    today."""
    elision = _measured()["serving_elision"]
    assert elision["rolify_read"]["rate"] >= 0.4, elision
    assert elision["rolify_mixed"]["rate"] >= 0.4, elision
    for name in ("boxroom_read", "boxroom_mixed",
                 "countries_read", "countries_mixed"):
        assert elision[name]["rate"] >= 0.55, (name, elision)
        assert elision[name]["applicable"] > 0, (name, elision)


def test_warm_workloads_take_the_fast_path():
    """A warm pubs/cct workload is served almost entirely by call plans."""
    cfg = {"pubs": {"publications": 40}, "cct": {"repeats": 10}}
    for app in ("pubs", "cct"):
        world = all_builders()[app](engine_for("hum"), **cfg[app])
        world.seed()
        world.workload()  # load phase: annotations execute, checks cache
        world.seed()
        world.workload()  # steady state
        stats = world.engine.stats
        assert stats.fast_path_hits > 0
        assert stats.fast_path_hits > stats.calls_intercepted * 0.9, app


def test_reload_churn_keeps_plans_warm():
    """Acceptance criterion: after redefining an unrelated method, the
    warm call-plan hit rate stays above 90% (dependency-tracked
    invalidation; the old per-version flush dropped to 0%)."""
    result = _measured()["reload"]
    assert result["warm_hit_rate"] > 0.9, result
    # only the churned method's site rebuilt
    assert result["plans_invalidated_by_churn"] == 1, result


def test_profile_cache_never_skips_a_failing_check():
    """Inline-cache soundness: a warm site still rejects bad argument
    classes (the profile only memoizes *passing* class tuples)."""
    import pytest

    from repro import ArgumentTypeError

    counter = _build_hot_class(fast_engine())
    for i in range(50):
        counter.bump(i)
    with pytest.raises(ArgumentTypeError):
        counter.bump("not an integer")


def test_benchmark_fast_steady_state(benchmark):
    counter = _build_hot_class(fast_engine())
    counter.bump(0)
    benchmark(counter.bump, 1)


def test_benchmark_legacy_steady_state(benchmark):
    counter = _build_hot_class(legacy_engine())
    counter.bump(0)
    benchmark(counter.bump, 1)


# -- baseline script ---------------------------------------------------------


def main(argv) -> int:
    calls = 10_000 if "--smoke" in argv else CALLS
    result = measure(calls)
    print(json.dumps(result, indent=2))
    if "--smoke" in argv and result["speedup"] < 2.0:
        # Smoke runs on shared CI runners are noisy; 2x is the alarm
        # threshold there, while the pytest assertion enforces 3x locally.
        print("FAIL: smoke speedup below 2x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
