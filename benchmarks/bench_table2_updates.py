"""Table 2: the dev-mode update experiment, timed and shape-checked."""

from repro.apps.talks.updates import run_update_experiment
from repro.evalharness.table2 import format_table2


def test_update_experiment(benchmark):
    rows = benchmark.pedantic(run_update_experiment, rounds=3, iterations=1)
    print("\n" + format_table2(rows))
    assert len(rows) == 7
    baseline = rows[0].checked_with_helpers
    for row in rows[1:]:
        # Incremental invalidation: each update re-checks far fewer
        # methods than the initial full load.
        assert row.checked_without_helpers < baseline
        expected = row.delta_meth + row.added + row.deps
        assert abs(row.checked_without_helpers - expected) <= 1
