"""Ablation benchmarks for the design choices DESIGN.md calls out.

* caching (the No$ column, plus the re-check-count claim);
* the boundary dynamic-argument-check optimization of section 4;
* dependency-tracked invalidation vs. flushing the whole cache;
* the formalism machine with and without its cache.
"""

import pytest

from repro import Engine, EngineConfig
from repro.apps import all_builders
from repro.formalism import Machine, parse_expr


class TestCachingAblation:
    def test_recheck_counts_pubs(self, bench_cfg):
        """The paper's Pubs investigation: without caching, application
        methods are re-checked once per call while iterating the large
        array (13,000+ in the paper's workload)."""
        world = all_builders()["pubs"](Engine(EngineConfig(caching=False)))
        world.seed()
        world.workload()
        nocache = world.engine.stats

        world2 = all_builders()["pubs"](Engine())
        world2.seed()
        world2.workload()
        cached = world2.engine.stats

        print(f"\npubs static checks: cached={cached.static_checks} "
              f"uncached={nocache.static_checks} "
              f"(hottest method re-checked {nocache.max_rechecks()}x)")
        assert cached.max_rechecks() == 1
        assert nocache.max_rechecks() > 100

    def test_cached_workload_faster(self, benchmark, bench_cfg):
        world = all_builders()["cct"](Engine(), **bench_cfg["cct"])
        world.seed()
        world.workload()

        def run():
            return world.workload()

        benchmark(run)


class TestArgCheckAblation:
    @pytest.mark.parametrize("mode", ["boundary", "always", "never"])
    def test_dynamic_check_policy(self, benchmark, bench_cfg, mode):
        """Section 4's optimization: only boundary calls are dynamically
        checked.  'always' re-checks every interception; 'never' trusts
        everything."""
        world = all_builders()["cct"](
            Engine(EngineConfig(dynamic_arg_checks=mode)),
            **bench_cfg["cct"])
        world.seed()
        world.workload()

        def run():
            return world.workload()

        benchmark(run)
        stats = world.engine.stats
        if mode == "never":
            assert stats.dynamic_arg_checks == 0
        if mode == "always":
            assert stats.dynamic_arg_checks_skipped == 0
        if mode == "boundary":
            assert stats.dynamic_arg_checks_skipped > 0


class TestInvalidationAblation:
    def _loaded_talks(self):
        world = all_builders()["talks"]()
        world.seed()
        world.workload()
        return world

    def test_targeted_vs_full_flush(self, benchmark):
        """Definition 1's selective invalidation vs. clearing the whole
        cache on every change: the targeted strategy re-checks only the
        changed method's dependents."""
        world = self._loaded_talks()
        engine = world.engine
        full = len(engine.cache)

        def change_and_rerun():
            removed = engine.invalidate("Talk", "display_title")
            world.seed()
            world.workload()
            return removed

        removed = benchmark.pedantic(change_and_rerun, rounds=3,
                                     iterations=1)
        assert 0 < len(removed) < full

    def test_full_flush_rechecks_everything(self):
        world = self._loaded_talks()
        engine = world.engine
        before = engine.stats.static_checks
        engine.cache.clear()
        world.seed()
        world.workload()
        rechecked = engine.stats.static_checks - before
        assert rechecked >= 20  # every exercised method again

        world2 = self._loaded_talks()
        engine2 = world2.engine
        before2 = engine2.stats.static_checks
        engine2.invalidate("Talk", "display_title")
        world2.seed()
        world2.workload()
        targeted = engine2.stats.static_checks - before2
        print(f"\nrechecks after one change: targeted={targeted} "
              f"full-flush={rechecked}")
        assert targeted < rechecked


class TestFormalismCache:
    PROGRAM = (
        "type A.id : A -> A; def A.id(x) { x }; "
        "type A.go : A -> A; def A.go(x) { self.id(self.id(x)) }; "
        "a = A.new; "
        + "; ".join(["a.go(a)"] * 60))

    def test_machine_cached(self, benchmark):
        expr = parse_expr(self.PROGRAM)
        result = benchmark(lambda: Machine().run(expr, fuel=100_000))
        assert result is not None

    def test_machine_uncached(self, benchmark):
        expr = parse_expr(self.PROGRAM)

        class _NoCache(dict):
            def __setitem__(self, key, value):
                pass

        def run():
            machine = Machine()
            machine.cache = _NoCache()
            return machine.run(expr, fuel=200_000)

        result = benchmark(run)
        assert result is not None
