"""Shared fixtures for the benchmark suite.

Benchmarks use reduced workload sizes where the full-size run would make
``--benchmark-only`` impractically slow (the no-cache modes re-check hot
methods on every call by design); the harness
(``python -m repro.evalharness table1``) runs the full sizes.
"""

import pytest

#: Reduced workload knobs per app for benchmarking.
BENCH_CFG = {
    "talks": {},
    "boxroom": {},
    "pubs": {"publications": 40},
    "rolify": {},
    "cct": {"repeats": 10},
    "countries": {"repeats": 5},
}


@pytest.fixture(scope="session")
def bench_cfg():
    return BENCH_CFG
