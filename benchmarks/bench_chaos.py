"""Chaos benchmarks: supervised recovery cost + breaker effectiveness.

The fault-tolerance claims of ``docs/robustness.md``, measured end to
end and committed as ``BENCH_chaos.json``:

* **Recovery** — a supervised fleet with scripted worker kills (the
  deterministic ``repro.faults`` plan) must still complete **100% of
  the schedule**, oracle-identically, with the accounting invariant
  intact — and the recovery detour (detect, respawn, replay, backoff)
  must cost a bounded multiple of the fault-free run on identical
  traffic, not a timeout-shaped cliff.  A budget-exhaustion sub-block
  pins the degraded mode: an unrecoverable worker abandons exactly its
  own slice while every other worker's slice completes untouched.
* **Breaker** — a reload flap storm (promote -> same-signature reload
  -> deopt, repeated) against one engine with the deopt-storm breaker
  armed and one with it disabled, same workload, real clock.  The
  breaker must trip, stop the wasted re-promotions (exec compilation
  burned on a site that never stays warm), and cut the flapping site's
  tail latency — the inline promotion compile is exactly what lands in
  p999.  Both modes must stay outcome-identical: the breaker is a
  performance governor, never a soundness mechanism.

Two ways to run:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_chaos.py -q`` —
  asserts completion, accounting, oracle identity, breaker trips, and
  environment-tunable overhead ceilings (skips cleanly where ``fork``
  or specialization is unavailable);
* ``PYTHONPATH=src python benchmarks/bench_chaos.py [--smoke]`` —
  prints the committed ``BENCH_chaos.json`` baseline JSON.
"""

import json
import os
import sys
import time

import pytest

from repro.concurrency import fork_available
from repro.core import Engine, EngineConfig
from repro.faults import KILL, Fault, FaultPlan
from repro.serving import (
    SupervisedScenario, run_supervised_scenario, summarize_samples,
)

#: recovery block: boxroom read traffic, 4 workers, kills scripted at
#: fixed (worker, ordinal) coordinates — the same run every time.
IO_WAIT_S = 0.001
WORKERS = 4
REQUESTS = 240

fork_missing = pytest.mark.skipif(
    not fork_available(),
    reason="supervised serving requires the 'fork' start method")
specialize_missing = pytest.mark.skipif(
    os.environ.get("REPRO_DISABLE_SPECIALIZE") == "1",
    reason="the breaker governs tier-2 promotion, which is ablated")


# -- recovery ----------------------------------------------------------------


def _scenario(name: str, requests: int, **overrides) -> SupervisedScenario:
    kw = dict(app="boxroom", mix="read", workers=WORKERS,
              requests=requests, io_wait_s=IO_WAIT_S, warm_rounds=4,
              cfg={"view_cost": 40}, backoff_base_s=0.01,
              backoff_cap_s=0.05, hang_timeout_s=5.0)
    kw.update(overrides)
    return SupervisedScenario(name, **kw)


def _kill_plan(requests: int) -> FaultPlan:
    """Three workers die at staggered points in their slices: early,
    mid, and late — early kills replay almost a whole slice, late kills
    test detection when the slice is nearly drained."""
    per_worker = requests // WORKERS
    return FaultPlan([
        Fault(KILL, 0, max(1, per_worker // 8)),
        Fault(KILL, 2, per_worker // 2),
        Fault(KILL, 3, max(2, (3 * per_worker) // 4)),
    ])


def measure_recovery(requests: int = REQUESTS) -> dict:
    clean = run_supervised_scenario(_scenario("clean", requests))
    faulted = run_supervised_scenario(_scenario("kills", requests),
                                      faults=_kill_plan(requests))
    assert clean.accounting_ok and faulted.accounting_ok
    overhead = faulted.elapsed_s / max(clean.elapsed_s, 1e-9)
    return {
        "app": "boxroom",
        "workers": WORKERS,
        "requests": requests,
        "kills_scripted": 3,
        "restarts": faulted.restarts,
        "requests_replayed": faulted.requests_replayed,
        "completion_rate": round(faulted.completed / requests, 4),
        "abandoned": faulted.abandoned,
        "accounting_ok": int(faulted.accounting_ok),
        "oracle_match": int(clean.oracle_match_cache_free
                            and faulted.oracle_match_cache_free),
        "clean_rps": round(clean.rps, 1),
        "faulted_rps": round(faulted.rps, 1),
        #: recovery detour cost: wall clock vs the fault-free run on
        #: identical traffic (replays + backoff + respawn forks).
        "recovery_overhead": round(overhead, 2),
        "latency_replayed_p99_ms": (
            faulted.latency["replayed"]["p99_ms"]
            if faulted.latency.get("replayed") else None),
        "abandonment": measure_abandonment(requests),
    }


def measure_abandonment(requests: int = REQUESTS) -> dict:
    """Degraded mode: worker 1 dies at its first request on every
    attempt; with the retry budget exhausted its slice is abandoned —
    and *only* its slice."""
    per_worker = requests // WORKERS
    plan = FaultPlan([Fault(KILL, 1, 0, attempt=a) for a in range(4)])
    report = run_supervised_scenario(
        _scenario("exhausted", requests, max_retries=2), faults=plan)
    return {
        "max_retries": 2,
        "abandoned": report.abandoned,
        "restarts": report.restarts,
        "accounting_ok": int(report.accounting_ok),
        #: the blast radius stays one slice: every *other* request
        #: completed, oracle-identically.
        "isolated": int(report.abandoned == per_worker
                        and report.completed == requests - per_worker
                        and report.oracle_match_cache_free),
    }


# -- breaker ----------------------------------------------------------------


_BUMP = "def bump(self, n):\n    return n + 1\n"
FLAP_CYCLES = 40
CALLS_PER_CYCLE = 8
BREAKER_THRESHOLD = 3


def _flap_world(breaker: bool):
    engine = Engine(EngineConfig(
        specialize_threshold=BREAKER_THRESHOLD, breaker=breaker,
        breaker_flap_limit=4, breaker_window_s=600.0,
        breaker_cooldown_s=600.0, breaker_wave_limit=10 ** 9))
    namespace = {}
    exec(_BUMP, namespace)  # noqa: S102 - fixed benchmark template
    cls = type("ChaosFlappy", (object,), {})
    engine.define_method(cls, "bump", namespace["bump"],
                         sig="(Integer) -> Integer", check=True,
                         source=_BUMP)
    return engine, cls()


def _storm(breaker: bool, cycles: int) -> dict:
    """One flap storm: each cycle warms the site hot enough to promote
    (when allowed), then a same-signature reload deopts it.  Per-call
    latency of the site's own calls is recorded — the inline promotion
    compile is what the breaker keeps out of the tail."""
    engine, obj = _flap_world(breaker)
    clock = time.perf_counter
    samples = []
    outcomes = []
    t0 = clock()
    for _ in range(cycles):
        for i in range(CALLS_PER_CYCLE):
            started = clock()
            outcomes.append(obj.bump(i))
            samples.append(clock() - started)
        engine.types.replace("ChaosFlappy", "bump",
                             "(Integer) -> Integer", check=True)
    elapsed = clock() - t0
    stats = engine.stats
    return {
        "elapsed_s": elapsed,
        "latency": summarize_samples(samples).as_ms_dict(),
        # The second half of the run: by then the armed breaker has
        # tripped, so this is the steady tail each mode settles into.
        # The full-run percentiles are ~equal by construction — both
        # modes pay the pre-trip promotion compiles, and p999 of a
        # storm this size is the max — so the recurring-spike claim
        # lives in the steady half, not the full run.
        "steady_latency": summarize_samples(
            samples[len(samples) // 2:]).as_ms_dict(),
        "outcomes": outcomes,
        "promotions": stats.promotions,
        "trips": stats.breaker_trips,
        "demotions": stats.breaker_demotions,
    }


def measure_breaker(cycles: int = FLAP_CYCLES) -> dict:
    armed = _storm(breaker=True, cycles=cycles)
    unarmed = _storm(breaker=False, cycles=cycles)
    steady_armed = armed["steady_latency"]["p999_ms"]
    steady_unarmed = unarmed["steady_latency"]["p999_ms"]
    return {
        "flap_cycles": cycles,
        "calls_per_cycle": CALLS_PER_CYCLE,
        "trips": armed["trips"],
        "demotions": armed["demotions"],
        "promotions_armed": armed["promotions"],
        "promotions_unarmed": unarmed["promotions"],
        #: exec compilations the breaker refused to burn on a site that
        #: never stays warm — the whole point of the governor.
        "wasted_promotions_avoided": (unarmed["promotions"]
                                      - armed["promotions"]),
        "p999_armed_ms": armed["latency"]["p999_ms"],
        "p999_unarmed_ms": unarmed["latency"]["p999_ms"],
        #: the headline tail claim, over the post-trip steady half of
        #: the storm: armed serves plain tier-1 calls; unarmed keeps
        #: paying a promotion compile per flap cycle, and that compile
        #: IS its p999.
        "steady_p999_armed_ms": steady_armed,
        "steady_p999_unarmed_ms": steady_unarmed,
        #: << 1 when the breaker holds; the CI gate caps this loosely
        #: (shared-runner noise on microsecond-scale calls).
        "steady_p999_ratio": round(
            steady_armed / max(steady_unarmed, 1e-9), 3),
        #: the breaker is not a soundness mechanism: identical results.
        "soundness": int(armed["outcomes"] == unarmed["outcomes"]
                         and unarmed["trips"] == 0),
    }


def measure(requests: int = REQUESTS, cycles: int = FLAP_CYCLES) -> dict:
    return {
        "recovery": measure_recovery(requests),
        "breaker": measure_breaker(cycles),
    }


# -- pytest entry points -----------------------------------------------------
# NOTE: these use skipif directly (not the conftest markers) because
# benchmarks/ runs under its own conftest, which has no marker hooks.


@fork_missing
def test_supervised_fleet_completes_under_kills():
    """Acceptance criterion: scripted kills cost restarts and replays,
    never requests — 100% completion, oracle-identical, accounting
    intact, and the detour bounded (CHAOS_MAX_OVERHEAD tunes the
    ceiling for shared runners)."""
    result = measure_recovery(requests=120)
    assert result["completion_rate"] == 1.0, result
    assert result["abandoned"] == 0, result
    assert result["accounting_ok"] == 1, result
    assert result["oracle_match"] == 1, result
    assert result["restarts"] == 3, result
    assert result["requests_replayed"] >= 3, result
    cap = float(os.environ.get("CHAOS_MAX_OVERHEAD", "10.0"))
    assert result["recovery_overhead"] <= cap, result


@fork_missing
def test_budget_exhaustion_abandons_one_slice_only():
    result = measure_abandonment(requests=120)
    assert result["accounting_ok"] == 1, result
    assert result["isolated"] == 1, result
    assert result["restarts"] == 2, result


@specialize_missing
def test_breaker_stops_promotion_churn_and_stays_sound():
    """Acceptance criterion: the armed breaker trips on the flap storm,
    avoids the wasted re-promotions, and changes no outcome."""
    result = measure_breaker(cycles=20)
    assert result["trips"] >= 1, result
    assert result["demotions"] >= 1, result
    assert result["wasted_promotions_avoided"] >= 1, result
    assert result["promotions_armed"] < result["promotions_unarmed"], result
    assert result["soundness"] == 1, result
    # Post-trip steady tail: armed must be meaningfully shorter than
    # the keep-promoting tail (CHAOS_MAX_STEADY_TAIL_RATIO tunes the
    # cap for noisy shared runners).
    cap = float(os.environ.get("CHAOS_MAX_STEADY_TAIL_RATIO", "0.9"))
    assert result["steady_p999_ratio"] <= cap, result


# -- baseline script ---------------------------------------------------------


def main(argv) -> int:
    if not fork_available():
        print(json.dumps({"skipped": "fork start method unavailable"}))
        return 0
    smoke = "--smoke" in argv
    result = measure(requests=120 if smoke else REQUESTS,
                     cycles=20 if smoke else FLAP_CYCLES)
    print(json.dumps(result, indent=2))
    recovery, breaker = result["recovery"], result["breaker"]
    cap = float(os.environ.get("CHAOS_MAX_OVERHEAD", "10.0"))
    ok = (recovery["completion_rate"] == 1.0
          and recovery["accounting_ok"] == 1
          and recovery["oracle_match"] == 1
          and recovery["restarts"] >= 1
          and recovery["recovery_overhead"] <= cap
          and recovery["abandonment"]["isolated"] == 1
          and breaker["trips"] >= 1
          and breaker["wasted_promotions_avoided"] >= 1
          and breaker["steady_p999_ratio"] <= 0.9
          and breaker["soundness"] == 1)
    if not ok:
        print("FAIL: a fault was not recovered, accounting broke, the "
              "breaker never tripped, or an outcome diverged",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
