"""Serving benchmarks: production-shaped traffic with tail-latency gates.

The concurrency suite proved lock-free scaling on a warm read path;
this suite measures what a deploy actually feels: write-heavy and mixed
request mixes exercising the sqldb create/update/destroy paths, dev-mode
reload + typegen churn landing mid-traffic from dedicated mutator
threads, and per-request latency percentiles — because a deopt storm
that averages away still shows up in p999.

Three committed scenarios (``BENCH_serving.json``):

* ``read_heavy``  — boxroom read mix (index pages included), 8 threads,
  warmed past the tier-2 promotion threshold: the steady-state ceiling;
* ``write_heavy`` — boxroom write cycles from all threads: the sqldb
  write path plus per-request view rendering under load;
* ``mixed_churn`` — boxroom mixed traffic while retype + dev-mode
  reload + typegen mutators run on their own threads: the dev-loop
  worst case, with deopt storms counted per churn step.

Every scenario is differentially verified in-run: the threaded outcome
multiset must equal both a single-threaded replay on the same warm
engine and a replay on a fresh cache-free oracle world.  A report whose
oracle bits are not 1 is a soundness bug, not a slow run.

Two ways to run:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q`` —
  asserts soundness (oracle match, zero errors, no crashes, churn
  actually applied) plus an environment-tunable p99 ceiling;
* ``PYTHONPATH=src python benchmarks/bench_serving.py [--smoke]`` —
  prints the committed-baseline JSON (``--smoke`` shrinks volumes for
  CI wall clocks; the committed baseline uses full volumes).
"""

import json
import os
import sys

from repro.serving import ServingScenario, run_scenario

#: per-request simulated I/O window (released GIL) — same rationale as
#: bench_concurrency: the engine must not serialize this window.
IO_WAIT_S = 0.002
THREADS = 8
REQUESTS = 480
#: read_heavy warms past EngineConfig.specialize_threshold (50) so the
#: measured phase rides tier-2 wrappers — the steady-state number.
STEADY_WARM_ROUNDS = 60


def _scenarios(requests: int, warm_rounds: int):
    return [
        ServingScenario(
            name="read_heavy", app="boxroom", mix="read",
            threads=THREADS, requests=requests, io_wait_s=IO_WAIT_S,
            churn="none", warm_rounds=warm_rounds,
            cfg={"view_cost": 40}),
        ServingScenario(
            name="write_heavy", app="boxroom", mix="write",
            threads=THREADS, requests=requests, io_wait_s=IO_WAIT_S,
            churn="none", warm_rounds=max(4, warm_rounds // 10),
            cfg={"view_cost": 40}),
        ServingScenario(
            name="mixed_churn", app="boxroom", mix="mixed",
            threads=THREADS, requests=requests, io_wait_s=IO_WAIT_S,
            churn="full", churn_interval_s=0.005,
            warm_rounds=max(4, warm_rounds // 10),
            cfg={"view_cost": 40}),
    ]


def measure(requests: int = REQUESTS,
            warm_rounds: int = STEADY_WARM_ROUNDS) -> dict:
    out = {}
    for scenario in _scenarios(requests, warm_rounds):
        report = run_scenario(scenario)
        out[scenario.name] = report.as_dict()
    return {"scenarios": out}


# -- pytest entry points -----------------------------------------------------


def test_read_heavy_steady_state_is_sound_and_fast():
    """Warmed past the promotion threshold, the read mix must be
    oracle-identical with zero errors, and its p99 must clear an
    environment-tunable ceiling (CI exports a lenient SERVING_MAX_P99_MS
    for noisy shared runners)."""
    ceiling_ms = float(os.environ.get("SERVING_MAX_P99_MS", "50"))
    report = run_scenario(ServingScenario(
        name="read_heavy", app="boxroom", mix="read", threads=THREADS,
        requests=160, io_wait_s=IO_WAIT_S, churn="none",
        warm_rounds=STEADY_WARM_ROUNDS, cfg={"view_cost": 40}))
    assert report.crashes == [], report.crashes
    assert report.errors == 0
    assert report.oracle_match and report.oracle_match_cache_free
    p99_ms = report.latency.p99 * 1000
    assert p99_ms <= ceiling_ms, (
        f"read-heavy p99 {p99_ms:.2f}ms > {ceiling_ms}ms ceiling")


def test_write_heavy_is_oracle_identical():
    """The write path under 8 threads: every create/update/destroy
    cycle lands exactly as the cache-free oracle says it should."""
    report = run_scenario(ServingScenario(
        name="write_heavy", app="boxroom", mix="write", threads=THREADS,
        requests=160, io_wait_s=IO_WAIT_S, churn="none", warm_rounds=4,
        cfg={"view_cost": 40}))
    assert report.crashes == [], report.crashes
    assert report.errors == 0
    assert report.completed == report.requests
    assert report.oracle_match and report.oracle_match_cache_free


def test_mixed_traffic_survives_full_churn():
    """The dev-loop worst case: mixed traffic while reload/typegen/
    retype mutators run.  Soundness is absolute; churn must actually
    have landed for the run to count."""
    report = run_scenario(ServingScenario(
        name="mixed_churn", app="boxroom", mix="mixed", threads=THREADS,
        requests=240, io_wait_s=IO_WAIT_S, churn="full",
        churn_interval_s=0.003, warm_rounds=4, cfg={"view_cost": 40}))
    assert report.crashes == [], report.crashes
    assert report.errors == 0
    assert report.churn_applied > 0, "mutator threads never ran"
    assert report.oracle_match and report.oracle_match_cache_free


# -- baseline script ---------------------------------------------------------


def main(argv) -> int:
    smoke = "--smoke" in argv
    requests = 160 if smoke else REQUESTS
    warm_rounds = STEADY_WARM_ROUNDS  # promotion depends on it; keep it
    result = measure(requests, warm_rounds)
    print(json.dumps(result, indent=2))
    bad = []
    for name, scenario in result["scenarios"].items():
        if not (scenario["oracle_match"]
                and scenario["oracle_match_cache_free"]):
            bad.append(f"{name}: oracle divergence")
        if scenario["errors"] or scenario["crashes"]:
            bad.append(f"{name}: {scenario['errors']} errors, "
                       f"{scenario['crashes']} crashes")
    if result["scenarios"]["mixed_churn"]["churn_applied"] < 1:
        bad.append("mixed_churn: churn never applied")
    if bad:
        print("FAIL: " + "; ".join(bad), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
