"""Multi-process serving benchmarks: pre-fork scaling + warm-start.

ROADMAP item 3's two claims, measured end to end:

* **Horizontal scale** — one CPython process is GIL-bound; forking N
  workers over the same warm world buys N cores.  The headline is
  aggregate rps at 4 workers vs 1 worker on the boxroom read-heavy
  recipe (same schedule, same per-request I/O window), which must
  clear 2x locally (``MULTIPROC_MIN_SCALING``; CI alarms at 1.5x on
  shared two-core runners).
* **Warm start** — a freshly forked (or freshly deployed) worker
  re-pays static checks, profiling, and tier-2/3 promotion from zero
  unless warm state survives.  The warm-start block builds a warmed
  world, saves its ``repro.snapshot`` warm-state file, then compares a
  cold fleet against a snapshot-warmed fleet on identical traffic:
  warm workers must pay *measurably fewer* promotions and static
  checks (zero, in practice) and reach steady state (first full pass
  over the request mix) faster — the cold-start deopt-storm window is
  the tail-latency enemy this kills.

Every run is differentially verified per worker: each worker's outcome
multiset must equal a cache-free oracle replay of that worker's exact
schedule slice.  A report whose oracle bits are not 1 is a soundness
bug, not a slow run.

Two ways to run:

* ``PYTHONPATH=src python -m pytest benchmarks/bench_multiproc.py -q``
  — asserts the scaling floor, the warm-vs-cold deltas, and soundness
  (skips cleanly where the ``fork`` start method is unavailable);
* ``PYTHONPATH=src python benchmarks/bench_multiproc.py [--smoke]`` —
  prints the committed ``BENCH_multiproc.json`` baseline JSON.
"""

import json
import os
import sys
import tempfile

import pytest

from repro.concurrency import fork_available
from repro.core import Engine, EngineConfig
from repro.serving import (
    MultiProcScenario, build_serving_world, run_multiproc_scenario,
    scenario_thunks,
)
from repro.snapshot import save_snapshot

#: per-request simulated I/O window for the scaling block; same
#: rationale as bench_concurrency — but here the *CPU* side scales too,
#: because workers are processes, not threads.
IO_WAIT_S = 0.004
REQUESTS = 480
WORKERS_LOW, WORKERS_HIGH = 1, 4

#: warm-start block: a low promotion threshold so the warmup traffic
#: promotes every hot site before the snapshot is taken.
WARM_THRESHOLD = 8
WARM_WORKERS = 2
WARM_REQUESTS = 240
#: parent warmup passes before the snapshot: past WARM_THRESHOLD hits
#: per thunk, so promotion (and tier-3 analysis) has fired.
WARM_ROUNDS = 16

fork_missing = pytest.mark.skipif(
    not fork_available(),
    reason="multi-process serving requires the 'fork' start method")


def measure_scaling(requests: int = REQUESTS,
                    io_wait_s: float = IO_WAIT_S) -> dict:
    """Aggregate rps at 1 vs 4 workers, same schedule, same recipe as
    the serving suite's read_heavy scenario."""
    runs = {}
    for workers in (WORKERS_LOW, WORKERS_HIGH):
        report = run_multiproc_scenario(MultiProcScenario(
            name=f"read_heavy_{workers}w", app="boxroom", mix="read",
            workers=workers, requests=requests, io_wait_s=io_wait_s,
            warm_rounds=4, cfg={"view_cost": 40}))
        assert not report.crashes, report.crashes
        assert report.completed == requests, (report.completed, requests)
        runs[workers] = report
    low, high = runs[WORKERS_LOW], runs[WORKERS_HIGH]
    return {
        "app": "boxroom",
        "requests": requests,
        "io_wait_ms": round(io_wait_s * 1000, 3),
        "workers_low": WORKERS_LOW,
        "workers_high": WORKERS_HIGH,
        "rps_low": round(low.rps, 1),
        "rps_high": round(high.rps, 1),
        "scaling": round(high.rps / low.rps, 2),
        "p99_ms_high": round(high.latency.p99 * 1000, 3),
        "oracle_match": int(low.oracle_match_cache_free
                            and high.oracle_match_cache_free),
        "crashes": len(low.crashes) + len(high.crashes),
    }


def _fleet_view(report) -> dict:
    transitions = report.transitions
    return {
        "rps": round(report.rps, 1),
        "first_pass_ms": round(report.first_pass_s * 1000, 3),
        "static_checks": transitions["static_checks"],
        "cache_misses": transitions["cache_misses"],
        "promotions": transitions["promotions"],
        "deopts": transitions["deopts"],
        "tier_transitions": (transitions["promotions"]
                             + transitions["repromotions"]
                             + transitions["deopts"]),
        "oracle_match": int(report.oracle_match_cache_free),
    }


def measure_warm_start(requests: int = WARM_REQUESTS) -> dict:
    """Cold fleet vs snapshot-warmed fleet on identical traffic.

    ``io_wait_s`` is zero: the cold-start window is CPU (checks +
    promotion compilation), and simulated I/O would only dilute the
    first-pass comparison with sleeps both fleets share.
    """
    engine = Engine(EngineConfig(specialize_threshold=WARM_THRESHOLD))
    world = build_serving_world("countries", engine=engine)
    thunks = scenario_thunks(world, "read")
    for _ in range(WARM_ROUNDS):
        for thunk in thunks:
            thunk()
    snapshot_path = os.path.join(tempfile.mkdtemp(prefix="warmstate"),
                                 "warm.json")
    save_snapshot(engine, snapshot_path)

    def fleet(name, snapshot):
        return run_multiproc_scenario(MultiProcScenario(
            name=name, app="countries", mix="read", workers=WARM_WORKERS,
            requests=requests, io_wait_s=0.0, warm_rounds=0,
            specialize_threshold=WARM_THRESHOLD, snapshot=snapshot))

    cold = fleet("cold_start", None)
    warm = fleet("warm_start", snapshot_path)
    assert not cold.crashes, cold.crashes
    assert not warm.crashes, warm.crashes
    cold_view, warm_view = _fleet_view(cold), _fleet_view(warm)
    cold_first = max(cold.first_pass_s, 1e-9)
    warm_first = max(warm.first_pass_s, 1e-9)
    return {
        "app": "countries",
        "workers": WARM_WORKERS,
        "requests": requests,
        "specialize_threshold": WARM_THRESHOLD,
        "cold": cold_view,
        "warm": warm_view,
        "snapshot_loaded": int(bool(warm.snapshot.get("loaded"))),
        "snapshot": dict(warm.snapshot),
        # the headline deltas: what warm-starting saved the fleet.
        "promotions_saved": (cold_view["promotions"]
                             - warm_view["promotions"]),
        "static_checks_saved": (cold_view["static_checks"]
                                - warm_view["static_checks"]),
        "steady_speedup": round(cold_first / warm_first, 2),
        "oracle_match": int(cold.oracle_match_cache_free
                            and warm.oracle_match_cache_free),
    }


def measure(requests: int = REQUESTS,
            warm_requests: int = WARM_REQUESTS) -> dict:
    return {
        "scaling": measure_scaling(requests),
        "warm_start": measure_warm_start(warm_requests),
    }


# -- pytest entry points -----------------------------------------------------
# NOTE: these use skipif directly (not the requires_fork marker) because
# benchmarks/ runs under its own conftest, which has no marker hooks.


@fork_missing
def test_multiproc_scaling_at_least_2x():
    """Acceptance criterion: > 2x aggregate rps at 4 workers vs 1 on
    the read-heavy recipe.  Shared CI runners have ~2 cores; CI exports
    MULTIPROC_MIN_SCALING=1.5 while local runs enforce the full 2x."""
    floor = float(os.environ.get("MULTIPROC_MIN_SCALING", "2.0"))
    result = measure_scaling(requests=240)
    assert result["oracle_match"] == 1, result
    assert result["crashes"] == 0, result
    assert result["scaling"] > floor, result


@fork_missing
def test_warm_start_skips_cold_start_work():
    """Acceptance criterion: snapshot-warmed workers reach steady state
    with measurably fewer promotions and static checks than cold ones
    (in practice: zero — the snapshot restored every verdict), and no
    deopt storm replaces the promotion storm."""
    result = measure_warm_start(requests=112)
    assert result["snapshot_loaded"] == 1, result
    assert result["oracle_match"] == 1, result
    assert result["promotions_saved"] >= 1, result
    assert result["static_checks_saved"] >= 1, result
    assert result["warm"]["promotions"] == 0, result
    assert result["warm"]["static_checks"] == 0, result
    assert result["warm"]["deopts"] == 0, result
    floor = float(os.environ.get("MULTIPROC_MIN_WARM_SPEEDUP", "1.0"))
    assert result["steady_speedup"] >= floor, result


@fork_missing
def test_multiproc_outcomes_match_cache_free_oracle():
    """Benchmark-sized differential soundness: every forked worker's
    outcome multiset equals the cache-free oracle replay of its own
    schedule slice."""
    report = run_multiproc_scenario(MultiProcScenario(
        name="oracle_check", app="boxroom", mix="read", workers=4,
        requests=96, io_wait_s=0.0, warm_rounds=2, cfg={"view_cost": 40}))
    assert not report.crashes, report.crashes
    assert report.errors == 0
    assert report.worker_oracle_matches == [True] * 4
    assert report.oracle_match_cache_free


# -- baseline script ---------------------------------------------------------


def main(argv) -> int:
    if not fork_available():
        print(json.dumps({"skipped": "fork start method unavailable"}))
        return 0
    smoke = "--smoke" in argv
    result = measure(requests=160 if smoke else REQUESTS,
                     warm_requests=112 if smoke else WARM_REQUESTS)
    print(json.dumps(result, indent=2))
    scaling_floor = 1.5 if smoke else 2.0
    scaling = result["scaling"]["scaling"]
    warm = result["warm_start"]
    ok = (scaling > scaling_floor
          and result["scaling"]["oracle_match"] == 1
          and warm["oracle_match"] == 1
          and warm["snapshot_loaded"] == 1
          and warm["promotions_saved"] >= 1
          and warm["static_checks_saved"] >= 1)
    if not ok:
        print(f"FAIL: scaling {scaling} <= {scaling_floor}x, warm-start "
              f"saved nothing, or a worker diverged from the oracle",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
