"""Table 1, performance columns: Orig / No$ / Hum per app.

Each benchmark times one app's workload under one engine mode.  Run with
``pytest benchmarks/ --benchmark-only``; compare the three modes of an app
to reproduce the paper's overhead story: Hum adds a small constant factor
over Orig, while disabling the cache (No$) is dramatically slower — the
relative ordering Orig < Hum << No$ is the result being reproduced, not
the absolute times.
"""

import pytest

from repro.apps import all_builders
from repro.evalharness.table1 import engine_for

APPS = list(all_builders())
MODES = ["orig", "hum", "nocache"]


def _prepared_world(name, mode, cfg):
    world = all_builders()[name](engine_for(mode), **cfg.get(name, {}))
    world.seed()
    world.workload()  # load phase: annotations executed, caches warm
    return world


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("app", APPS)
def test_workload_time(benchmark, bench_cfg, app, mode):
    world = _prepared_world(app, mode, bench_cfg)

    def run():
        world.seed()
        return world.workload()

    result = benchmark(run)
    assert result  # the workload produced responses in every mode


@pytest.mark.parametrize("app", ["pubs", "cct"])
def test_cache_orders_hot_apps(bench_cfg, app):
    """Sanity on the reproduced shape: for the hot-loop apps, the cached
    engine is much faster than the uncached one on identical workloads."""
    import time

    def timed(mode):
        world = _prepared_world(app, mode, bench_cfg)
        world.seed()
        start = time.perf_counter()
        world.workload()
        return time.perf_counter() - start

    hum, nocache = timed("hum"), timed("nocache")
    assert nocache > hum * 2
