"""Table 1, statistics columns: LoC, Chk'd/App/All, Gen'd/Used, Casts, Phs.

The benchmark times the full build+check pipeline per app and prints the
paper's rows; assertions pin the *shape* the paper reports (Gen'd >= Used,
Countries generates nothing, Rolify is multi-phase, etc.).
"""

import pytest

from repro.apps import all_builders
from repro.evalharness.loc import count_world_loc
from repro.evalharness.table1 import engine_for

APPS = list(all_builders())


@pytest.mark.parametrize("app", APPS)
def test_typecheck_statistics(benchmark, bench_cfg, app):
    def build_and_run():
        world = all_builders()[app](engine_for("hum"),
                                    **bench_cfg.get(app, {}))
        world.seed()
        world.workload()
        return world

    world = benchmark.pedantic(build_and_run, rounds=3, iterations=1)
    stats = world.engine.stats
    row = {
        "app": app,
        "loc": count_world_loc(world),
        "chkd": stats.chkd(),
        "app_types": stats.app_count(),
        "all_types": stats.all_count(),
        "gen": stats.generated_count(),
        "used": stats.used_generated_count(),
        "casts": stats.cast_site_count(),
        "phases": stats.phases(),
    }
    print(f"\nTable1[{app}]: {row}")

    assert row["chkd"] <= row["app_types"] <= row["all_types"]
    assert row["used"] <= row["gen"]
    if app == "countries":
        assert row["gen"] == 0
        assert row["casts"] >= 5
    else:
        assert row["gen"] > 0
    if app == "rolify":
        assert row["phases"] > 1
    else:
        assert row["phases"] == 1
