"""Per-call interception overhead: unwrapped vs generic vs specialized.

The paper's deployment question is "what does leaving Hummingbird on in
production cost per call?".  This benchmark answers it in nanoseconds on
a trivial typed method, at each execution tier:

* **unwrapped** — the plain Python method, no interception (the floor
  any wrapper overhead is measured against);
* **generic** — the tier-1 wrapper: ``rdl.wrap``'s generic closure into
  ``Engine.invoke`` riding a warm :class:`~repro.core.plans.CallPlan`
  (``EngineConfig(specialize=False)``);
* **specialized** — the tier-2 wrapper: the same plan compiled into an
  exec-generated per-site function (:mod:`repro.core.specialize`).

Two ways to run:

* ``python -m pytest benchmarks/bench_overhead.py -q`` — asserts the
  specialized wrapper cuts the interception overhead (wrapper ns minus
  unwrapped ns) to at most ``OVERHEAD_MAX_FRACTION`` of the generic
  wrapper's (CI relaxes via the env var);
* ``python benchmarks/bench_overhead.py [--smoke]`` — prints the JSON
  report committed as ``BENCH_overhead.json`` and compared by
  ``benchmarks/compare_baseline.py --suite overhead`` in the CI
  bench-trend job.
"""

import json
import os
import sys
import time

from repro import Engine, EngineConfig

#: calls per timed loop (--smoke shrinks).
CALLS = 200_000

#: local acceptance: specialized overhead <= this fraction of generic
#: overhead (CI alarms at the env-provided fraction instead).
OVERHEAD_MAX_FRACTION = 0.65


class _Plain:
    """The unwrapped control: same body, no engine anywhere near it."""

    def bump(self, n):
        return n + 1


def _typed_counter(engine):
    hb = engine.api()

    class OverheadCounter:
        @hb.typed("(Integer) -> Integer")
        def bump(self, n):
            return n + 1

    return OverheadCounter()


def _ns_per_call(obj, calls: int) -> float:
    for i in range(150):
        obj.bump(i)  # warm: checks cached, plan built, tier-2 promoted
    # Bind *after* warming: tier-2 promotion rebinds the class
    # attribute, and a bound method hoisted before promotion would keep
    # dispatching through the displaced generic wrapper (sound — the
    # liveness guard covers the reverse case — but it would measure
    # tier 1 twice).
    bump = obj.bump
    start = time.perf_counter()
    for i in range(calls):
        bump(i)
    return (time.perf_counter() - start) / calls * 1e9


def measure(calls: int = CALLS) -> dict:
    unwrapped_ns = _ns_per_call(_Plain(), calls)
    generic_engine = Engine(EngineConfig(specialize=False))
    generic_ns = _ns_per_call(_typed_counter(generic_engine), calls)
    spec_engine = Engine()
    spec_obj = _typed_counter(spec_engine)
    specialized_ns = _ns_per_call(spec_obj, calls)
    generic_overhead = generic_ns - unwrapped_ns
    specialized_overhead = specialized_ns - unwrapped_ns
    return {
        "calls": calls,
        "unwrapped_ns": round(unwrapped_ns, 1),
        "generic_ns": round(generic_ns, 1),
        "specialized_ns": round(specialized_ns, 1),
        "generic_overhead_ns": round(generic_overhead, 1),
        "specialized_overhead_ns": round(specialized_overhead, 1),
        #: the headline: how much of the interception tax tier 2 removes.
        "overhead_reduction": round(
            generic_overhead / specialized_overhead, 2),
        "promotions": spec_engine.stats.promotions,
    }


# -- pytest entry points -----------------------------------------------------


def test_specialized_wrapper_cuts_interception_overhead():
    """PR 4 acceptance: tier 2 removes a large constant fraction of the
    per-call interception tax (locally the specialized overhead must be
    <= 65% of the generic overhead; CI relaxes via env because shared
    runners are noisy)."""
    fraction = float(os.environ.get("OVERHEAD_MAX_FRACTION",
                                    str(OVERHEAD_MAX_FRACTION)))
    result = measure()
    assert result["promotions"] >= 1, result
    assert result["specialized_ns"] < result["generic_ns"], result
    assert (result["specialized_overhead_ns"]
            <= fraction * result["generic_overhead_ns"]), result


def test_benchmark_unwrapped(benchmark):
    obj = _Plain()
    benchmark(obj.bump, 1)


def test_benchmark_generic_wrapper(benchmark):
    obj = _typed_counter(Engine(EngineConfig(specialize=False)))
    for i in range(150):
        obj.bump(i)
    benchmark(obj.bump, 1)


def test_benchmark_specialized_wrapper(benchmark):
    obj = _typed_counter(Engine())
    for i in range(150):
        obj.bump(i)
    benchmark(obj.bump, 1)


# -- baseline script ---------------------------------------------------------


def main(argv) -> int:
    calls = 20_000 if "--smoke" in argv else CALLS
    result = measure(calls)
    print(json.dumps(result, indent=2))
    if result["specialized_ns"] >= result["generic_ns"]:
        print("FAIL: specialized wrapper not faster than generic",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
