"""Benchmark-trend gate: compare fresh results against committed baselines.

CI runs ``bench_hotpath.py``, ``bench_concurrency.py``,
``bench_serving.py``, ``bench_multiproc.py``, and ``bench_chaos.py``,
writes their JSON reports to an artifacts
directory, and then runs this script to
compare each report against the committed ``BENCH_*.json`` baseline
with the repo's *alarm-threshold* convention: shared runners are noisy,
so CI alarms only when a metric falls below a conservative fraction of
the committed number (or an absolute floor, whichever the metric spec
says) — the full-strength numbers are enforced by local runs and by the
committed baselines themselves.

Usage::

    python benchmarks/compare_baseline.py \
        --baseline BENCH_hotpath.json --current out/hotpath.json \
        --suite hotpath
    python benchmarks/compare_baseline.py \
        --baseline BENCH_concurrency.json --current out/concurrency.json \
        --suite concurrency

Exit code 0 = within thresholds, 1 = regression alarm, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, List, Tuple

Metric = Tuple[str, Callable[[dict], float], Callable[[float, float], bool],
               str]


def _get(path: str):
    def getter(report: dict) -> float:
        node = report
        for part in path.split("."):
            node = node[part]
        return float(node)
    return getter


def _absolute_floor(floor: float):
    """Alarm when current < floor, whatever the baseline says."""
    return lambda current, baseline: current >= floor


def _floor_and_fraction(floor: float, fraction: float):
    """The trend gate for dimensionless metrics (speedups, scalings,
    hit rates port across machines): alarm when current drops below the
    absolute floor *or* below ``fraction`` of the committed baseline —
    the latter catches a slow slide that stays above the floor."""
    return lambda current, baseline: (current >= floor
                                      and current >= baseline * fraction)


def _absolute_ceiling(cap: float):
    """Alarm when current > cap — for counts that must stay bounded
    (deopt storms) regardless of the committed baseline."""
    return lambda current, baseline: current <= cap


def _ceiling_and_headroom(cap: float, headroom: float):
    """The trend gate for latency metrics: alarm when current exceeds
    the absolute ceiling *or* ``headroom`` times the committed baseline
    — the latter catches a tail that doubles while staying under a
    loose cap sized for shared runners."""
    return lambda current, baseline: (current <= cap
                                      and current <= baseline * headroom)


#: suite name -> [(metric path, getter, ok(current, baseline), description)]
SUITES = {
    "hotpath": [
        ("speedup", _get("speedup"), _floor_and_fraction(2.0, 0.5),
         "steady-state speedup vs legacy engine (alarm floor 2x, and "
         "no sliding below half the committed baseline)"),
        ("fast_path_hit_ratio",
         lambda r: float(r["fast_path_hits"]) / float(r["calls"]),
         _absolute_floor(1.0),
         "every warm call must ride a plan (hits/calls, size-independent)"),
        ("tier2.speedup_vs_tier1", _get("tier2.speedup_vs_tier1"),
         _floor_and_fraction(1.2, 0.6),
         "specialized wrappers must beat the generic plan path (alarm "
         "floor 1.2x on shared runners; local acceptance is 1.5x)"),
        ("tier2.specialized_hit_ratio",
         _get("tier2.specialized_hit_ratio"), _absolute_floor(0.99),
         "the warm loop must actually ride tier 2 (promotion fired and "
         "stuck)"),
        ("tier3.speedup_vs_tier2", _get("tier3.speedup_vs_tier2"),
         _floor_and_fraction(1.02, 0.6),
         "check elimination must beat the elide-off tier-2 wrapper on "
         "the same loop (alarm floor 1.02x on shared runners; the "
         "committed baseline records the full local gain)"),
        ("tier3.checks_elided", _get("tier3.checks_elided"),
         _absolute_floor(1.0),
         "the warm loop must actually run with statically discharged "
         "checks (the counter only moves inside stripped wrappers)"),
        ("tier3.elide_promotions", _get("tier3.elide_promotions"),
         _absolute_floor(1.0),
         "promotion must have carried an elision verdict for the hot "
         "leaf"),
        ("poly.speedup_vs_tier1", _get("poly.speedup_vs_tier1"),
         _floor_and_fraction(1.2, 0.6),
         "the 2-entry polymorphic dispatch must beat the generic tier-1 "
         "path (alarm floor 1.2x on shared runners; local acceptance "
         "is 1.5x)"),
        ("poly.poly_promotions", _get("poly.poly_promotions"),
         _absolute_floor(1.0),
         "the second hot receiver class must actually join the site"),
        ("poly.specialized_hit_ratio", _get("poly.specialized_hit_ratio"),
         _absolute_floor(0.98),
         "the alternating-receiver loop must ride the 2-entry dispatch "
         "(0.98 tolerates the smoke run's warmup fraction)"),
        ("kwargs.speedup_vs_tier1", _get("kwargs.speedup_vs_tier1"),
         _floor_and_fraction(1.2, 0.6),
         "the compiled kwargs layout must beat the generic tier-1 path "
         "(alarm floor 1.2x on shared runners; local acceptance is "
         "1.5x)"),
        ("kwargs.kw_promotions", _get("kwargs.kw_promotions"),
         _absolute_floor(1.0),
         "the kwargs layout must actually have been compiled in"),
        ("kwargs.kw_spec_hit_ratio", _get("kwargs.kw_spec_hit_ratio"),
         _absolute_floor(0.98),
         "keyword calls must ride the compiled reorder (0.98 tolerates "
         "the smoke run's warmup fraction)"),
        ("reload.warm_hit_rate", _get("reload.warm_hit_rate"),
         _absolute_floor(0.9),
         "dev-mode reload keeps >=90% of calls on warm plans"),
    ] + [
        (f"serving_elision.{name}.rate",
         _get(f"serving_elision.{name}.rate"),
         _floor_and_fraction(floor, 0.9),
         f"provable check-elimination rate on the warm {name} serving "
         "mix (deterministic audit, not a timing — 0.9 of baseline "
         "tolerates only workload-shape drift).  rolify's floor gates "
         "the >=1.5x-over-pre-PR criterion: its pre-name-level-"
         "contract-gate rate was 0.0")
        for name, floor in (("boxroom_read", 0.55),
                            ("boxroom_mixed", 0.55),
                            ("countries_read", 0.55),
                            ("countries_mixed", 0.55),
                            ("rolify_read", 0.4),
                            ("rolify_mixed", 0.4))
    ],
    "overhead": [
        ("overhead_reduction", _get("overhead_reduction"),
         _floor_and_fraction(1.3, 0.5),
         "tier 2 must remove a large fraction of the per-call "
         "interception tax vs the generic wrapper (alarm floor 1.3x; "
         "the committed baseline records the full local reduction)"),
        ("promotions", _get("promotions"), _absolute_floor(1.0),
         "the measured site must actually have been promoted"),
    ],
    "concurrency": [
        ("scaling.scaling", _get("scaling.scaling"),
         _floor_and_fraction(2.0, 0.5),
         "8-thread vs 1-thread aggregate throughput (alarm floor 2x, "
         "no sliding below half the committed baseline; local "
         "acceptance is 3x)"),
        ("scaling.warm_hit_rate", _get("scaling.warm_hit_rate"),
         _absolute_floor(0.9),
         "warm traffic must be served from call plans"),
        ("churn.warm_hit_rate_under_churn",
         _get("churn.warm_hit_rate_under_churn"), _absolute_floor(0.5),
         "reload churn under load must not cold-start the world"),
        ("churn.errors", lambda r: -float(r["churn"]["errors"]),
         _absolute_floor(0.0), "no request errors under churn"),
    ],
    "serving": [
        ("read_heavy.rps", _get("scenarios.read_heavy.rps"),
         _floor_and_fraction(500.0, 0.25),
         "steady-state read throughput at 8 threads (loose floor for "
         "shared runners; no sliding below a quarter of the committed "
         "baseline)"),
        ("read_heavy.p99_ms", _get("scenarios.read_heavy.p99_ms"),
         _ceiling_and_headroom(50.0, 5.0),
         "steady-state read tail: p99 under an absolute 50ms cap and "
         "within 5x of the committed baseline"),
        ("read_heavy.p999_ms", _get("scenarios.read_heavy.p999_ms"),
         _ceiling_and_headroom(100.0, 5.0),
         "steady-state read extreme tail (p999) stays bounded"),
        ("mixed_churn.p99_ms", _get("scenarios.mixed_churn.p99_ms"),
         _ceiling_and_headroom(50.0, 5.0),
         "tail under reload/typegen churn: invalidation waves may cost "
         "a recheck, not a cold start"),
        ("mixed_churn.p999_ms", _get("scenarios.mixed_churn.p999_ms"),
         _ceiling_and_headroom(100.0, 5.0),
         "extreme tail under churn stays bounded (a deopt storm that "
         "stalls requests lands here first)"),
        ("mixed_churn.deopt_storms",
         _get("scenarios.mixed_churn.deopt_storms"),
         _absolute_ceiling(120.0),
         "churn steps that displaced live specialized wrappers must "
         "stay bounded (a storm per step means re-specialization is "
         "thrashing)"),
        ("mixed_churn.churn_applied",
         _get("scenarios.mixed_churn.churn_applied"),
         _absolute_floor(1.0),
         "the mutator threads must actually have run — a churnless "
         "'churn' scenario gates nothing"),
        ("mixed_churn.errors",
         lambda r: -float(r["scenarios"]["mixed_churn"]["errors"]),
         _absolute_floor(0.0), "no request errors under serving churn"),
    ] + [
        (f"{scenario}.{bit}", _get(f"scenarios.{scenario}.{bit}"),
         _absolute_floor(1.0),
         f"{scenario} outcome multiset must equal the "
         f"{'cache-free ' if 'free' in bit else 'warm-engine '}oracle "
         f"replay")
        for scenario in ("read_heavy", "write_heavy", "mixed_churn")
        for bit in ("oracle_match", "oracle_match_cache_free")
    ],
    "multiproc": [
        ("scaling.scaling", _get("scaling.scaling"),
         _floor_and_fraction(1.5, 0.5),
         "4-worker vs 1-worker aggregate rps (alarm floor 1.5x on "
         "~2-core shared runners; local acceptance is the >2x "
         "criterion, recorded in the committed baseline)"),
        ("scaling.rps_high", _get("scaling.rps_high"),
         _floor_and_fraction(150.0, 0.25),
         "aggregate 4-worker throughput floor (loose for shared "
         "runners; no sliding below a quarter of the committed "
         "baseline)"),
        ("scaling.oracle_match", _get("scaling.oracle_match"),
         _absolute_floor(1.0),
         "every worker's outcome multiset must equal the cache-free "
         "oracle replay of its schedule slice"),
        ("warm_start.snapshot_loaded", _get("warm_start.snapshot_loaded"),
         _absolute_floor(1.0),
         "the warm fleet must actually have warm-started (a rejected "
         "snapshot silently measures cold vs cold)"),
        ("warm_start.promotions_saved",
         _get("warm_start.promotions_saved"), _absolute_floor(1.0),
         "warm-started workers must re-pay measurably fewer tier-2 "
         "promotions than cold ones"),
        ("warm_start.static_checks_saved",
         _get("warm_start.static_checks_saved"), _absolute_floor(1.0),
         "warm-started workers must re-pay measurably fewer static "
         "checks than cold ones"),
        ("warm_start.steady_speedup", _get("warm_start.steady_speedup"),
         _floor_and_fraction(1.0, 0.2),
         "warm-start-faster-than-cold: the warm fleet's first full "
         "pass must not be slower than the cold fleet's (the committed "
         "baseline records a much larger local gap; 0.2 tolerates "
         "shared-runner noise on a millisecond-scale window)"),
        ("warm_start.warm.tier_transitions",
         _get("warm_start.warm.tier_transitions"), _absolute_ceiling(8.0),
         "the warm fleet's promotion/deopt churn must stay near zero — "
         "a warm start that re-promotes everything is a cold start "
         "with extra steps"),
        ("warm_start.oracle_match", _get("warm_start.oracle_match"),
         _absolute_floor(1.0),
         "cold and warm fleets must both be oracle-identical (a warm "
         "start may never trade soundness for startup time)"),
    ],
    "chaos": [
        ("recovery.completion_rate", _get("recovery.completion_rate"),
         _absolute_floor(1.0),
         "scripted worker kills cost restarts and replays, never "
         "requests: the supervised fleet completes 100% of the "
         "schedule"),
        ("recovery.accounting_ok", _get("recovery.accounting_ok"),
         _absolute_floor(1.0),
         "scheduled == completed_first + completed_retried + abandoned "
         "must hold on the faulted run"),
        ("recovery.oracle_match", _get("recovery.oracle_match"),
         _absolute_floor(1.0),
         "every accepted outcome (replays included) must equal the "
         "cache-free oracle for its schedule index"),
        ("recovery.restarts", _get("recovery.restarts"),
         _absolute_floor(1.0),
         "the kill script must actually have exercised the supervisor "
         "(a restartless chaos run gates nothing)"),
        ("recovery.requests_replayed", _get("recovery.requests_replayed"),
         _absolute_floor(1.0),
         "respawned workers must actually have replayed remainders"),
        ("recovery.recovery_overhead", _get("recovery.recovery_overhead"),
         _ceiling_and_headroom(10.0, 4.0),
         "the recovery detour (detect + respawn + replay + backoff) "
         "stays a bounded multiple of the fault-free run — a timeout-"
         "shaped cliff lands here"),
        ("recovery.abandonment.accounting_ok",
         _get("recovery.abandonment.accounting_ok"), _absolute_floor(1.0),
         "accounting must survive retry-budget exhaustion too"),
        ("recovery.abandonment.isolated",
         _get("recovery.abandonment.isolated"), _absolute_floor(1.0),
         "an unrecoverable worker abandons exactly its own slice; "
         "every other slice completes oracle-identically"),
        ("breaker.trips", _get("breaker.trips"), _absolute_floor(1.0),
         "the flap storm must trip the deopt-storm breaker"),
        ("breaker.wasted_promotions_avoided",
         _get("breaker.wasted_promotions_avoided"), _absolute_floor(1.0),
         "the armed breaker must avoid the re-promotions the unarmed "
         "engine burns on a site that never stays warm"),
        ("breaker.steady_p999_ratio", _get("breaker.steady_p999_ratio"),
         _ceiling_and_headroom(0.9, 4.0),
         "post-trip steady tail: the armed p999 stays well under the "
         "keep-promoting p999 (ratio < 1; loose cap for shared-runner "
         "noise on microsecond calls)"),
        ("breaker.soundness", _get("breaker.soundness"),
         _absolute_floor(1.0),
         "armed and unarmed storms must produce identical outcomes — "
         "the breaker is a governor, not a soundness mechanism"),
    ],
}


def compare(suite: str, baseline: dict, current: dict) -> List[str]:
    failures = []
    for name, getter, ok, description in SUITES[suite]:
        try:
            cur = getter(current)
            base = getter(baseline)
        except (KeyError, TypeError) as exc:
            failures.append(f"{name}: missing from report ({exc!r})")
            continue
        verdict = "ok" if ok(cur, base) else "ALARM"
        print(f"[{suite}] {name}: current={cur} baseline={base} "
              f"-> {verdict}  ({description})")
        if verdict != "ok":
            failures.append(f"{name}: current={cur} baseline={base}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", required=True, choices=sorted(SUITES))
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    args = parser.parse_args(argv)
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        with open(args.current) as handle:
            current = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot load reports: {exc}", file=sys.stderr)
        return 2
    failures = compare(args.suite, baseline, current)
    if failures:
        print("REGRESSION ALARM:\n  " + "\n  ".join(failures),
              file=sys.stderr)
        return 1
    print(f"[{args.suite}] all metrics within thresholds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
